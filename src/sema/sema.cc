#include "src/sema/sema.h"

#include <cassert>
#include <unordered_set>

#include "src/sema/qual_solver.h"
#include "src/support/strings.h"

namespace confllvm {

namespace {

class Checker {
 public:
  Checker(std::unique_ptr<Program> ast, const SemaOptions& options, DiagEngine* diags,
          const ModuleInterfaceSet* interfaces)
      : diags_(diags), interfaces_(interfaces) {
    tp_ = std::make_unique<TypedProgram>();
    tp_->ast = std::move(ast);
    tp_->types = std::make_unique<TypeContext>();
    tp_->options = options;
    default_qual_ = options.all_private ? Qual::kPrivate : Qual::kPublic;
  }

  std::unique_ptr<TypedProgram> Run() {
    CollectStructs();
    CollectGlobals();
    ResolveModuleImports();
    CollectFunctions();
    if (diags_->HasErrors()) {
      return nullptr;
    }
    for (FunctionSema& fs : tp_->functions) {
      CheckFunctionBody(&fs);
    }
    if (diags_->HasErrors()) {
      return nullptr;
    }
    if (!solver_.Solve(diags_)) {
      return nullptr;
    }
    CheckConditions();
    CheckCt();
    Substitute();
    tp_->num_qual_vars = solver_.num_vars();
    tp_->num_constraints = solver_.num_constraints();
    tp_->solver_stats = solver_.stats();
    if (diags_->HasErrors()) {
      return nullptr;
    }
    return std::move(tp_);
  }

 private:
  TypeContext& Types() { return *tp_->types; }

  // ---- Symbols & scopes ----

  Symbol* NewSymbol(Symbol::Kind kind, const std::string& name, SourceLoc loc) {
    tp_->owned_symbols.push_back(std::make_unique<Symbol>());
    Symbol* s = tp_->owned_symbols.back().get();
    s->kind = kind;
    s->name = name;
    s->loc = loc;
    return s;
  }

  Symbol* Lookup(const std::string& name) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto f = it->find(name);
      if (f != it->end()) {
        return f->second;
      }
    }
    auto g = file_scope_.find(name);
    return g != file_scope_.end() ? g->second : nullptr;
  }

  bool DeclareLocal(Symbol* s) {
    auto& scope = scopes_.back();
    if (scope.count(s->name) != 0) {
      diags_->Error(s->loc, StrFormat("redeclaration of '%s'", s->name.c_str()));
      return false;
    }
    scope[s->name] = s;
    return true;
  }

  // ---- Type resolution ----

  QualTerm DefaultTerm(bool fresh_vars) {
    if (fresh_vars) {
      return solver_.NewVar();
    }
    return QualTerm::Const(default_qual_);
  }

  // Resolves written type syntax to a qualified semantic type. `fresh_vars`
  // makes unannotated levels inference variables (locals); otherwise they
  // default to public (private in all-private mode) — top-level annotations
  // are authoritative per the paper.
  QType ResolveType(const TypeSyntax& ts, bool fresh_vars) {
    QType qt;
    if (ts.base == TypeSyntax::Base::kFnPtr) {
      auto sig = std::make_shared<FnSig>();
      sig->ret = ResolveType(*ts.fn_ret, /*fresh_vars=*/false);
      for (const auto& p : ts.fn_params) {
        sig->params.push_back(ResolveType(*p, /*fresh_vars=*/false));
      }
      qt.shape = Types().FnPtrType(std::move(sig));
      qt.quals.assign(1, DefaultTerm(fresh_vars));
      return qt;
    }
    const Type* base = nullptr;
    switch (ts.base) {
      case TypeSyntax::Base::kInt: base = Types().IntType(); break;
      case TypeSyntax::Base::kChar: base = Types().CharType(); break;
      case TypeSyntax::Base::kFloat: base = Types().FloatType(); break;
      case TypeSyntax::Base::kVoid: base = Types().VoidType(); break;
      case TypeSyntax::Base::kStruct:
        base = Types().StructType(ts.struct_name);
        break;
      case TypeSyntax::Base::kFnPtr: break;
    }
    const Type* shape = base;
    for (size_t i = 0; i < ts.pointers.size(); ++i) {
      shape = Types().PointerTo(shape);
    }
    for (auto it = ts.array_dims.rbegin(); it != ts.array_dims.rend(); ++it) {
      if (*it <= 0) {
        diags_->Error(ts.loc, "array dimension must be positive");
        break;
      }
      shape = Types().ArrayOf(shape, static_cast<uint64_t>(*it));
    }
    const size_t levels = TypeContext::NumLevels(shape);
    qt.shape = shape;
    qt.quals.assign(levels, QualTerm{});
    // Level (levels-1) is the base; pointer level i (innermost-first) is
    // levels-2-i. Explicit `private` wins; unannotated uses DefaultTerm.
    qt.quals[levels - 1] =
        ts.base_private ? QualTerm::Const(Qual::kPrivate) : DefaultTerm(fresh_vars);
    for (size_t i = 0; i < ts.pointers.size(); ++i) {
      const size_t level = levels - 2 - i;
      qt.quals[level] = ts.pointers[i].is_private ? QualTerm::Const(Qual::kPrivate)
                                                  : DefaultTerm(fresh_vars);
    }
    return qt;
  }

  // True if level 0 of the written type carries an explicit `private`.
  static bool HasOutermostAnnotation(const TypeSyntax& ts) {
    if (ts.base == TypeSyntax::Base::kFnPtr) {
      return false;
    }
    if (!ts.pointers.empty()) {
      return ts.pointers.back().is_private;
    }
    return ts.base_private;
  }

  bool RequireComplete(const QType& qt, SourceLoc loc, const char* what) {
    const Type* s = qt.shape;
    while (s->kind == TypeKind::kArray) {
      s = s->elem;
    }
    if (s->kind == TypeKind::kStruct && !s->struct_info->defined) {
      diags_->Error(loc, StrFormat("%s has incomplete type 'struct %s'", what,
                                   s->struct_info->name.c_str()));
      return false;
    }
    if (s->kind == TypeKind::kVoid && qt.shape->kind != TypeKind::kPointer &&
        TypeContext::NumLevels(qt.shape) == 1 && qt.shape->kind == TypeKind::kVoid) {
      diags_->Error(loc, StrFormat("%s has type void", what));
      return false;
    }
    return true;
  }

  // ---- Top-level collection ----

  void CollectStructs() {
    for (const StructDecl& sd : tp_->ast->structs) {
      StructInfo* si = Types().GetOrCreateStruct(sd.name);
      if (si->defined) {
        diags_->Error(sd.loc, StrFormat("redefinition of struct '%s'", sd.name.c_str()));
        continue;
      }
      si->defined = true;  // set first so self-pointers work
    }
    for (const StructDecl& sd : tp_->ast->structs) {
      StructInfo* si = Types().GetOrCreateStruct(sd.name);
      uint64_t offset = 0;
      uint64_t align = 1;
      std::unordered_set<std::string> names;
      for (const FieldDecl& fd : sd.fields) {
        if (!names.insert(fd.name).second) {
          diags_->Error(fd.loc, StrFormat("duplicate field '%s'", fd.name.c_str()));
          continue;
        }
        if (HasOutermostAnnotation(*fd.type)) {
          // Paper §5.1: fields inherit their outermost annotation from the
          // enclosing object; mixed outermost taints would split the object
          // across regions.
          diags_->Error(fd.loc,
                        StrFormat("field '%s': outermost qualifier is inherited from the "
                                  "enclosing object; annotate inner levels only",
                                  fd.name.c_str()));
        }
        QType ft = ResolveType(*fd.type, /*fresh_vars=*/false);
        if (ft.shape->kind == TypeKind::kStruct && !ft.shape->struct_info->defined) {
          diags_->Error(fd.loc, "field has incomplete struct type");
          continue;
        }
        if (ft.shape->kind == TypeKind::kVoid) {
          diags_->Error(fd.loc, "field cannot have type void");
          continue;
        }
        const uint64_t fa = Types().AlignOf(ft.shape);
        offset = (offset + fa - 1) / fa * fa;
        StructField f;
        f.name = fd.name;
        f.type = std::move(ft);
        f.offset = offset;
        offset += Types().SizeOf(f.type.shape);
        align = std::max(align, fa);
        si->fields.push_back(std::move(f));
      }
      si->align = align;
      si->size = (offset + align - 1) / align * align;
      if (si->size == 0) {
        si->size = align;
      }
    }
  }

  void CollectGlobals() {
    for (GlobalDecl& gd : tp_->ast->globals) {
      if (file_scope_.count(gd.name) != 0) {
        diags_->Error(gd.loc, StrFormat("redeclaration of '%s'", gd.name.c_str()));
        continue;
      }
      Symbol* s = NewSymbol(Symbol::Kind::kGlobal, gd.name, gd.loc);
      s->type = ResolveType(*gd.type, /*fresh_vars=*/false);
      RequireComplete(s->type, gd.loc, "global");
      s->index = static_cast<uint32_t>(tp_->globals.size());
      if (gd.init != nullptr) {
        CheckGlobalInit(s, gd.init.get());
      }
      file_scope_[gd.name] = s;
      tp_->globals.push_back(s);
    }
  }

  void CheckGlobalInit(Symbol* s, const Expr* init) {
    switch (init->kind) {
      case ExprKind::kIntLit:
        s->init_kind = Symbol::InitKind::kInt;
        s->init_int = init->int_value;
        return;
      case ExprKind::kFloatLit:
        s->init_kind = Symbol::InitKind::kFloat;
        s->init_float = init->float_value;
        return;
      case ExprKind::kNullLit:
        s->init_kind = Symbol::InitKind::kInt;
        s->init_int = 0;
        return;
      case ExprKind::kUnary:
        if (init->op1 == Tok::kMinus && init->lhs->kind == ExprKind::kIntLit) {
          s->init_kind = Symbol::InitKind::kInt;
          s->init_int = -init->lhs->int_value;
          return;
        }
        if (init->op1 == Tok::kMinus && init->lhs->kind == ExprKind::kFloatLit) {
          s->init_kind = Symbol::InitKind::kFloat;
          s->init_float = -init->lhs->float_value;
          return;
        }
        break;
      case ExprKind::kStringLit: {
        const Type* sh = s->type.shape;
        const bool char_array =
            sh->kind == TypeKind::kArray && sh->elem->kind == TypeKind::kChar;
        const bool char_ptr =
            sh->kind == TypeKind::kPointer && sh->elem->kind == TypeKind::kChar;
        if (!char_array && !char_ptr) {
          diags_->Error(init->loc, "string initializer requires char array or char*");
          return;
        }
        if (char_array && init->str_value.size() + 1 > sh->array_len) {
          diags_->Error(init->loc, "string initializer too long");
          return;
        }
        s->init_kind = Symbol::InitKind::kString;
        s->init_str = init->str_value;
        return;
      }
      default:
        break;
    }
    diags_->Error(init->loc, "global initializer must be a constant");
  }

  // ---- Module imports (separate compilation) ----

  // Builds a concrete QType in this compilation's TypeContext from a
  // context-free interface type: interface qualifiers are authoritative and
  // always constant — imported signatures never introduce inference vars.
  QType InterfaceToQType(const InterfaceType& it) {
    const Type* shape = nullptr;
    switch (it.base) {
      case InterfaceType::Base::kInt: shape = Types().IntType(); break;
      case InterfaceType::Base::kChar: shape = Types().CharType(); break;
      case InterfaceType::Base::kFloat: shape = Types().FloatType(); break;
      case InterfaceType::Base::kVoid: shape = Types().VoidType(); break;
    }
    for (uint32_t i = 0; i < it.ptr_levels; ++i) {
      shape = Types().PointerTo(shape);
    }
    QType qt;
    qt.shape = shape;
    qt.quals.reserve(it.quals.size());
    for (const Qual q : it.quals) {
      qt.quals.push_back(QualTerm::Const(q));
    }
    return qt;
  }

  // Declares every exported function of every `import "m"` module as a
  // callable symbol. The callee body is never seen: the interface signature
  // (with its confidentiality qualifiers) IS the contract, checked at every
  // call site exactly like a local signature — so passing private data to a
  // public parameter of another module is a module-boundary error here, and
  // the same contract is re-checked by the linker and by link-time
  // ConfVerify on the merged binary (src/isa/link.h).
  void ResolveModuleImports() {
    std::unordered_set<std::string> seen_modules;
    for (const ImportDecl& id : tp_->ast->imports) {
      if (!seen_modules.insert(id.module).second) {
        diags_->Error(id.loc,
                      StrFormat("duplicate import of module '%s'", id.module.c_str()));
        continue;
      }
      const ModuleInterface* iface =
          interfaces_ == nullptr ? nullptr : interfaces_->Find(id.module);
      if (iface == nullptr) {
        diags_->Error(id.loc, StrFormat("unknown module '%s' (no interface available)",
                                        id.module.c_str()));
        continue;
      }
      for (const InterfaceFn& f : iface->functions) {
        if (file_scope_.count(f.name) != 0) {
          Symbol* prev = file_scope_[f.name];
          const std::string what = prev->is_module_import
                                       ? "import from module '" + prev->module + "'"
                                       : std::string("a declaration in this module");
          diags_->Error(id.loc,
                        StrFormat("import of '%s' from module '%s' collides with %s",
                                  f.name.c_str(), id.module.c_str(), what.c_str()));
          continue;
        }
        Symbol* s = NewSymbol(Symbol::Kind::kFunc, f.name, id.loc);
        auto sig = std::make_shared<FnSig>();
        sig->ret = InterfaceToQType(f.ret);
        for (const InterfaceType& p : f.params) {
          sig->params.push_back(InterfaceToQType(p));
        }
        s->sig = std::move(sig);
        s->is_module_import = true;
        s->module = id.module;
        s->index = static_cast<uint32_t>(tp_->module_imports.size());
        tp_->module_imports.push_back(s);
        file_scope_[f.name] = s;
      }
    }
  }

  void CollectFunctions() {
    // Pass 1: register symbols, merge redeclarations, find definitions.
    std::unordered_set<std::string> defined;
    for (FuncDecl& fd : tp_->ast->functions) {
      auto sig = std::make_shared<FnSig>();
      sig->ret = ResolveType(*fd.ret_type, /*fresh_vars=*/false);
      for (const ParamDecl& p : fd.params) {
        QType pt = ResolveType(*p.type, /*fresh_vars=*/false);
        // Array parameters decay to pointers (C semantics).
        pt = DecayType(pt);
        sig->params.push_back(std::move(pt));
      }
      if (fd.params.size() > 4) {
        // The taint-aware CFI encodes taints of exactly 4 argument registers
        // (paper §4, Windows x64 convention).
        diags_->Error(fd.loc,
                      StrFormat("function '%s' has %zu parameters; ConfLLVM supports at "
                                "most 4 register arguments",
                                fd.name.c_str(), fd.params.size()));
      }
      // The CFI taint bits cover the integer argument/return registers only;
      // floats travel through memory.
      if (sig->ret.shape->kind == TypeKind::kFloat) {
        diags_->Error(fd.loc, StrFormat("function '%s': float return values are not "
                                        "supported; return through memory",
                                        fd.name.c_str()));
      }
      for (const QType& pt : sig->params) {
        if (pt.shape->kind == TypeKind::kFloat) {
          diags_->Error(fd.loc, StrFormat("function '%s': float parameters are not "
                                          "supported; pass through memory",
                                          fd.name.c_str()));
          break;
        }
      }
      Symbol* s = nullptr;
      auto it = file_scope_.find(fd.name);
      if (it != file_scope_.end()) {
        s = it->second;
        if (s->kind != Symbol::Kind::kFunc) {
          diags_->Error(fd.loc, StrFormat("'%s' redeclared as function", fd.name.c_str()));
          continue;
        }
        if (s->is_module_import) {
          diags_->Error(fd.loc,
                        StrFormat("'%s' conflicts with a function imported from module '%s'",
                                  fd.name.c_str(), s->module.c_str()));
          continue;
        }
        if (!SigEqual(*s->sig, *sig)) {
          diags_->Error(fd.loc,
                        StrFormat("conflicting signature for '%s'", fd.name.c_str()));
          continue;
        }
      } else {
        s = NewSymbol(Symbol::Kind::kFunc, fd.name, fd.loc);
        s->sig = sig;
        file_scope_[fd.name] = s;
      }
      if (fd.body != nullptr) {
        if (!defined.insert(fd.name).second) {
          diags_->Error(fd.loc, StrFormat("redefinition of '%s'", fd.name.c_str()));
          continue;
        }
        FunctionSema fs;
        fs.decl = &fd;
        fs.sym = s;
        tp_->functions.push_back(std::move(fs));
      }
    }
    // Pass 2: any function symbol never defined is an import from T
    // (paper §6: externals table).
    for (FuncDecl& fd : tp_->ast->functions) {
      auto it = file_scope_.find(fd.name);
      if (it == file_scope_.end() || it->second->kind != Symbol::Kind::kFunc) {
        continue;
      }
      Symbol* s = it->second;
      if (defined.count(fd.name) == 0 && !s->is_trusted_import) {
        s->is_trusted_import = true;
        s->index = static_cast<uint32_t>(tp_->trusted_imports.size());
        tp_->trusted_imports.push_back(s);
      }
    }
  }

  // ---- Shape compatibility ----

  static bool TypeEqual(const Type* a, const Type* b) {
    if (a == b) {
      return true;
    }
    if (a->kind != b->kind) {
      return false;
    }
    switch (a->kind) {
      case TypeKind::kPointer:
        return TypeEqual(a->elem, b->elem);
      case TypeKind::kArray:
        return a->array_len == b->array_len && TypeEqual(a->elem, b->elem);
      case TypeKind::kFnPtr:
        return SigShapeEqual(*a->fn_sig, *b->fn_sig);
      default:
        return false;  // scalars/structs are interned, a == b covers them
    }
  }

  static bool SigShapeEqual(const FnSig& a, const FnSig& b) {
    if (a.params.size() != b.params.size() || !TypeEqual(a.ret.shape, b.ret.shape)) {
      return false;
    }
    for (size_t i = 0; i < a.params.size(); ++i) {
      if (!TypeEqual(a.params[i].shape, b.params[i].shape)) {
        return false;
      }
    }
    return true;
  }

  static bool QualsEqual(const QType& a, const QType& b) {
    if (a.quals.size() != b.quals.size()) {
      return false;
    }
    for (size_t i = 0; i < a.quals.size(); ++i) {
      const QualTerm& x = a.quals[i];
      const QualTerm& y = b.quals[i];
      if (x.is_var || y.is_var) {
        if (!(x.is_var && y.is_var && x.var == y.var)) {
          return false;
        }
      } else if (x.value != y.value) {
        return false;
      }
    }
    return true;
  }

  static bool SigEqual(const FnSig& a, const FnSig& b) {
    if (!SigShapeEqual(a, b)) {
      return false;
    }
    if (!QualsEqual(a.ret, b.ret)) {
      return false;
    }
    for (size_t i = 0; i < a.params.size(); ++i) {
      if (!QualsEqual(a.params[i], b.params[i])) {
        return false;
      }
    }
    return true;
  }

  bool ShapeCompatible(const Type* dst, const Type* src) {
    if (TypeEqual(dst, src)) {
      return true;
    }
    if (dst->IsNumeric() && src->IsNumeric()) {
      return true;
    }
    if (dst->IsPointer() && src->IsPointer()) {
      if (dst->elem->kind == TypeKind::kVoid || src->elem->kind == TypeKind::kVoid) {
        return true;
      }
      return TypeEqual(dst->elem, src->elem);
    }
    return false;
  }

  // Array-to-pointer decay. The decayed pointer value is a fresh address
  // (default taint); deeper levels keep the array's element taints.
  QType DecayType(const QType& t) {
    if (t.shape->kind != TypeKind::kArray) {
      return t;
    }
    const Type* elem = t.shape->elem;
    while (elem->kind == TypeKind::kArray) {
      elem = elem->elem;  // multi-dim arrays decay to pointer-to-innermost row
    }
    QType out;
    out.shape = Types().PointerTo(t.shape->elem);
    out.quals.reserve(1 + t.quals.size());
    out.quals.push_back(QualTerm::Const(default_qual_));
    for (const QualTerm& q : t.quals) {
      out.quals.push_back(q);
    }
    return out;
  }

  // ---- Expression checking ----

  ExprInfo& Info(const Expr* e) { return tp_->expr_info[e]; }

  QualTerm JoinTerms(QualTerm a, QualTerm b, SourceLoc loc) {
    if (!a.is_var && !b.is_var) {
      return QualTerm::Const(JoinQual(a.value, b.value));
    }
    QualTerm v = solver_.NewVar();
    solver_.AddFlow(a, v, loc, "join");
    solver_.AddFlow(b, v, loc, "join");
    return v;
  }

  // Checks `dst = src_expr`, generating flow constraints. `what` names the
  // sink for error messages.
  void CheckAssignTo(const QType& dst, const Expr* src_e, SourceLoc loc,
                     const std::string& what) {
    const ExprInfo& si = CheckExpr(src_e);
    if (!si.type.IsValid() || !dst.IsValid()) {
      return;
    }
    if (src_e->kind == ExprKind::kNullLit) {
      if (!dst.shape->IsPointer() && dst.shape->kind != TypeKind::kFnPtr &&
          !dst.shape->IsInteger()) {
        diags_->Error(loc, "NULL requires pointer or integer destination");
      }
      return;
    }
    QType src = DecayType(si.type);
    if (!ShapeCompatible(dst.shape, src.shape)) {
      diags_->Error(loc, StrFormat("incompatible types in %s: cannot convert '%s' to '%s'",
                                   what.c_str(), Types().ToString(src.shape).c_str(),
                                   Types().ToString(dst.shape).c_str()));
      return;
    }
    solver_.AddFlow(src.quals[0], dst.quals[0], loc, what);
    if (dst.shape->IsPointer() && src.shape->IsPointer()) {
      const size_t n = std::min(dst.quals.size(), src.quals.size());
      for (size_t i = 1; i < n; ++i) {
        solver_.AddEq(src.quals[i], dst.quals[i], loc, "pointee of " + what);
      }
    }
    if (dst.shape->kind == TypeKind::kFnPtr && src.shape->kind == TypeKind::kFnPtr) {
      // Signatures are concrete; shape compat already verified structure.
      if (!SigEqual(*dst.shape->fn_sig, *src.shape->fn_sig)) {
        diags_->Error(loc, "function pointer qualifier signature mismatch in " + what);
      }
    }
  }

  const ExprInfo& CheckExpr(const Expr* e) {
    auto it = tp_->expr_info.find(e);
    if (it != tp_->expr_info.end()) {
      return it->second;
    }
    ExprInfo info = CheckExprImpl(e);
    return tp_->expr_info.emplace(e, std::move(info)).first->second;
  }

  ExprInfo CheckExprImpl(const Expr* e) {
    ExprInfo info;
    switch (e->kind) {
      case ExprKind::kIntLit:
        info.type.shape = Types().IntType();
        info.type.quals = {QualTerm::Const(Qual::kPublic)};
        return info;
      case ExprKind::kFloatLit:
        info.type.shape = Types().FloatType();
        info.type.quals = {QualTerm::Const(Qual::kPublic)};
        return info;
      case ExprKind::kStringLit:
        info.type.shape = Types().PointerTo(Types().CharType());
        info.type.quals = {QualTerm::Const(default_qual_), QualTerm::Const(default_qual_)};
        return info;
      case ExprKind::kNullLit:
        info.type.shape = Types().PointerTo(Types().VoidType());
        info.type.quals = {QualTerm::Const(Qual::kPublic), QualTerm::Const(Qual::kPublic)};
        return info;
      case ExprKind::kVarRef: {
        Symbol* s = Lookup(e->name);
        if (s == nullptr) {
          diags_->Error(e->loc, StrFormat("undeclared identifier '%s'", e->name.c_str()));
          return info;
        }
        info.sym = s;
        if (s->kind == Symbol::Kind::kFunc) {
          info.type.shape = Types().FnPtrType(s->sig);
          info.type.quals = {QualTerm::Const(Qual::kPublic)};
          info.is_lvalue = false;
        } else {
          info.type = s->type;
          info.is_lvalue = true;
        }
        return info;
      }
      case ExprKind::kUnary:
        return CheckUnary(e);
      case ExprKind::kBinary:
        return CheckBinary(e);
      case ExprKind::kAssign: {
        const ExprInfo& li = CheckExpr(e->lhs.get());
        if (!li.type.IsValid()) {
          return info;
        }
        if (!li.is_lvalue) {
          diags_->Error(e->loc, "assignment target is not an lvalue");
          return info;
        }
        if (li.type.shape->kind == TypeKind::kArray) {
          diags_->Error(e->loc, "cannot assign to an array");
          return info;
        }
        if (li.type.shape->kind == TypeKind::kStruct) {
          diags_->Error(e->loc, "whole-struct assignment is not supported; copy fields");
          return info;
        }
        CtFlowGuardsInto(li.type.quals[0], e->loc);
        if (CtMode() && li.type.shape->kind == TypeKind::kFloat) {
          CtViolationIfGuarded(e->loc, "floating-point assignment");
        }
        CheckAssignTo(li.type, e->rhs.get(), e->loc, "assignment");
        info.type = li.type;
        info.is_lvalue = false;
        return info;
      }
      case ExprKind::kCall:
        return CheckCall(e);
      case ExprKind::kIndex: {
        const ExprInfo& bi = CheckExpr(e->lhs.get());
        const ExprInfo& xi = CheckExpr(e->rhs.get());
        if (!bi.type.IsValid() || !xi.type.IsValid()) {
          return info;
        }
        if (!xi.type.shape->IsInteger()) {
          diags_->Error(e->loc, "array index must be an integer");
          return info;
        }
        CtRequirePublic(xi.type.quals[0], e->rhs->loc, "array index");
        QType base = bi.type;
        if (base.shape->kind == TypeKind::kArray) {
          info.type.shape = base.shape->elem;
          info.type.quals = base.quals;  // arrays share their element level
          info.is_lvalue = true;
          return info;
        }
        base = DecayType(base);
        if (!base.shape->IsPointer()) {
          diags_->Error(e->loc, "subscripted value is not an array or pointer");
          return info;
        }
        CtRequirePublic(base.quals[0], e->loc, "subscripted pointer");
        info.type.shape = base.shape->elem;
        info.type.quals.assign(base.quals.begin() + 1, base.quals.end());
        info.is_lvalue = true;
        return info;
      }
      case ExprKind::kMember: {
        const ExprInfo& bi = CheckExpr(e->lhs.get());
        if (!bi.type.IsValid()) {
          return info;
        }
        const Type* agg = bi.type.shape;
        QualTerm obj_qual = bi.type.quals[0];
        if (e->is_arrow) {
          if (!agg->IsPointer() || agg->elem->kind != TypeKind::kStruct) {
            diags_->Error(e->loc, "'->' requires a pointer to struct");
            return info;
          }
          CtRequirePublic(bi.type.quals[0], e->loc, "dereferenced pointer");
          agg = agg->elem;
          obj_qual = bi.type.quals[1];
        } else {
          if (agg->kind != TypeKind::kStruct) {
            diags_->Error(e->loc, "'.' requires a struct value");
            return info;
          }
          if (!bi.is_lvalue) {
            diags_->Error(e->loc, "member access requires an lvalue struct");
            return info;
          }
        }
        if (!agg->struct_info->defined) {
          diags_->Error(e->loc, "member access on incomplete struct");
          return info;
        }
        const StructField* f = agg->struct_info->FindField(e->name);
        if (f == nullptr) {
          diags_->Error(e->loc, StrFormat("no field '%s' in struct '%s'", e->name.c_str(),
                                          agg->struct_info->name.c_str()));
          return info;
        }
        // Paper §5.1: the field inherits its *outermost* qualifier from the
        // enclosing object; deeper levels come from the field declaration.
        info.type = f->type;
        info.type.quals[0] = obj_qual;
        info.is_lvalue = true;
        return info;
      }
      case ExprKind::kDeref: {
        const ExprInfo& bi = CheckExpr(e->lhs.get());
        if (!bi.type.IsValid()) {
          return info;
        }
        QType base = DecayType(bi.type);
        if (!base.shape->IsPointer()) {
          diags_->Error(e->loc, "cannot dereference a non-pointer");
          return info;
        }
        if (base.shape->elem->kind == TypeKind::kVoid) {
          diags_->Error(e->loc, "cannot dereference void*");
          return info;
        }
        CtRequirePublic(base.quals[0], e->loc, "dereferenced pointer");
        info.type.shape = base.shape->elem;
        info.type.quals.assign(base.quals.begin() + 1, base.quals.end());
        info.is_lvalue = true;
        return info;
      }
      case ExprKind::kAddrOf: {
        const ExprInfo& bi = CheckExpr(e->lhs.get());
        if (!bi.type.IsValid()) {
          return info;
        }
        if (!bi.is_lvalue) {
          diags_->Error(e->loc, "cannot take address of an rvalue");
          return info;
        }
        info.type.shape = Types().PointerTo(bi.type.shape);
        info.type.quals.reserve(bi.type.quals.size() + 1);
        info.type.quals.push_back(QualTerm::Const(default_qual_));
        for (const QualTerm& q : bi.type.quals) {
          info.type.quals.push_back(q);
        }
        if (bi.type.shape->kind == TypeKind::kArray) {
          // &array has the same level structure as the array's decay.
          info.type.shape = Types().PointerTo(bi.type.shape->elem);
        }
        return info;
      }
      case ExprKind::kCast: {
        const ExprInfo& si = CheckExpr(e->lhs.get());
        if (!si.type.IsValid()) {
          return info;
        }
        QType dst = ResolveType(*e->type_syntax, /*fresh_vars=*/false);
        QType src = DecayType(si.type);
        const bool dst_fn = dst.shape->kind == TypeKind::kFnPtr;
        const bool src_fn = src.shape->kind == TypeKind::kFnPtr;
        const bool ok =
            (dst.shape->IsNumeric() && src.shape->IsNumeric()) ||
            (dst.shape->IsPointer() && src.shape->IsPointer()) ||
            (dst.shape->IsPointer() && src.shape->IsInteger()) ||
            (dst.shape->IsInteger() && src.shape->IsPointer()) ||
            // Function pointers can be forged from integers/pointers — the
            // taint-aware CFI, not the type system, is what stops hijacks.
            (dst_fn && (src.shape->IsInteger() || src.shape->IsPointer())) ||
            ((dst.shape->IsInteger() || dst.shape->IsPointer()) && src_fn) ||
            TypeEqual(dst.shape, src.shape);
        if (!ok) {
          diags_->Error(e->loc, StrFormat("invalid cast from '%s' to '%s'",
                                          Types().ToString(src.shape).c_str(),
                                          Types().ToString(dst.shape).c_str()));
          return info;
        }
        // Casts may re-declare pointee taints (runtime checks catch lies,
        // paper §7.6 Minizip) but cannot declassify the value itself.
        solver_.AddFlow(src.quals[0], dst.quals[0], e->loc,
                        "cast (a cast cannot declassify its operand)");
        info.type = std::move(dst);
        return info;
      }
      case ExprKind::kSizeof: {
        QType t = ResolveType(*e->type_syntax, /*fresh_vars=*/false);
        RequireComplete(t, e->loc, "sizeof operand");
        info.type.shape = Types().IntType();
        info.type.quals = {QualTerm::Const(Qual::kPublic)};
        return info;
      }
    }
    return info;
  }

  ExprInfo CheckUnary(const Expr* e) {
    ExprInfo info;
    const ExprInfo& oi = CheckExpr(e->lhs.get());
    if (!oi.type.IsValid()) {
      return info;
    }
    QType t = DecayType(oi.type);
    switch (e->op1) {
      case Tok::kMinus:
        if (!t.shape->IsNumeric()) {
          diags_->Error(e->loc, "unary '-' requires a numeric operand");
          return info;
        }
        info.type.shape = t.shape->kind == TypeKind::kFloat ? Types().FloatType()
                                                            : Types().IntType();
        info.type.quals = {t.quals[0]};
        return info;
      case Tok::kTilde:
        if (!t.shape->IsInteger()) {
          diags_->Error(e->loc, "'~' requires an integer operand");
          return info;
        }
        info.type.shape = Types().IntType();
        info.type.quals = {t.quals[0]};
        return info;
      case Tok::kBang:
        if (!t.shape->IsNumeric() && !t.shape->IsPointer()) {
          diags_->Error(e->loc, "'!' requires a scalar operand");
          return info;
        }
        info.type.shape = Types().IntType();
        info.type.quals = {t.quals[0]};
        return info;
      default:
        diags_->Error(e->loc, "unsupported unary operator");
        return info;
    }
  }

  ExprInfo CheckBinary(const Expr* e) {
    ExprInfo info;
    const ExprInfo& li = CheckExpr(e->lhs.get());
    // ct: the right operand of a short-circuit operator only evaluates on
    // one side of a branch on the left operand — same guard as an if arm.
    const bool sc_guard = CtMode() &&
                          (e->op1 == Tok::kAndAnd || e->op1 == Tok::kOrOr) &&
                          li.type.IsValid();
    if (sc_guard) {
      ct_guards_.push_back(li.type.quals[0]);
    }
    const ExprInfo& ri = CheckExpr(e->rhs.get());
    if (sc_guard) {
      ct_guards_.pop_back();
    }
    if (!li.type.IsValid() || !ri.type.IsValid()) {
      return info;
    }
    QType l = DecayType(li.type);
    QType r = DecayType(ri.type);
    const Tok op = e->op1;

    auto int_result = [&](QualTerm q) {
      info.type.shape = Types().IntType();
      info.type.quals = {q};
    };

    switch (op) {
      case Tok::kAndAnd:
      case Tok::kOrOr:
        // Short-circuit evaluation branches on both operands.
        RecordCondition(e->lhs.get());
        RecordCondition(e->rhs.get());
        if ((!l.shape->IsNumeric() && !l.shape->IsPointer()) ||
            (!r.shape->IsNumeric() && !r.shape->IsPointer())) {
          diags_->Error(e->loc, "logical operator requires scalar operands");
          return info;
        }
        int_result(JoinTerms(l.quals[0], r.quals[0], e->loc));
        return info;
      case Tok::kEq:
      case Tok::kNe:
      case Tok::kLt:
      case Tok::kGt:
      case Tok::kLe:
      case Tok::kGe: {
        const bool numeric = l.shape->IsNumeric() && r.shape->IsNumeric();
        const bool pointers = (l.shape->IsPointer() || e->lhs->kind == ExprKind::kNullLit) &&
                              (r.shape->IsPointer() || e->rhs->kind == ExprKind::kNullLit);
        const bool fnptr = l.shape->kind == TypeKind::kFnPtr &&
                           (r.shape->kind == TypeKind::kFnPtr ||
                            e->rhs->kind == ExprKind::kNullLit);
        if (!numeric && !pointers && !fnptr) {
          diags_->Error(e->loc, "invalid operands to comparison");
          return info;
        }
        int_result(JoinTerms(l.quals[0], r.quals[0], e->loc));
        return info;
      }
      case Tok::kPlus:
      case Tok::kMinus: {
        if (l.shape->IsPointer() && r.shape->IsInteger()) {
          info.type = l;
          return info;
        }
        if (op == Tok::kPlus && l.shape->IsInteger() && r.shape->IsPointer()) {
          info.type = r;
          return info;
        }
        if (op == Tok::kMinus && l.shape->IsPointer() && r.shape->IsPointer()) {
          if (!TypeEqual(l.shape, r.shape)) {
            diags_->Error(e->loc, "pointer difference requires matching pointer types");
            return info;
          }
          int_result(JoinTerms(l.quals[0], r.quals[0], e->loc));
          return info;
        }
        [[fallthrough]];
      }
      case Tok::kStar:
      case Tok::kSlash: {
        if (!l.shape->IsNumeric() || !r.shape->IsNumeric()) {
          diags_->Error(e->loc, "arithmetic requires numeric operands");
          return info;
        }
        const bool is_float =
            l.shape->kind == TypeKind::kFloat || r.shape->kind == TypeKind::kFloat;
        if (is_float) {
          CtViolationIfGuarded(e->loc, "floating-point operation");
        } else if (op == Tok::kSlash) {
          // Integer division faults on a zero divisor, so the divisor's
          // value is observable through the fault channel, and the
          // linearizer cannot hoist a division out of a secret branch.
          CtRequirePublic(r.quals[0], e->rhs->loc, "divisor");
          CtViolationIfGuarded(e->loc, "division");
        }
        info.type.shape = is_float ? Types().FloatType() : Types().IntType();
        info.type.quals = {JoinTerms(l.quals[0], r.quals[0], e->loc)};
        return info;
      }
      case Tok::kPercent:
      case Tok::kAmp:
      case Tok::kPipe:
      case Tok::kCaret:
      case Tok::kShl:
      case Tok::kShr:
        if (!l.shape->IsInteger() || !r.shape->IsInteger()) {
          diags_->Error(e->loc, "bitwise/modulo operators require integer operands");
          return info;
        }
        if (op == Tok::kPercent) {
          CtRequirePublic(r.quals[0], e->rhs->loc, "divisor");
          CtViolationIfGuarded(e->loc, "division");
        }
        int_result(JoinTerms(l.quals[0], r.quals[0], e->loc));
        return info;
      default:
        diags_->Error(e->loc, "unsupported binary operator");
        return info;
    }
  }

  ExprInfo CheckCall(const Expr* e) {
    ExprInfo info;
    CtViolationIfGuarded(e->loc, "call");
    const FnSig* sig = nullptr;
    if (e->lhs->kind == ExprKind::kVarRef) {
      Symbol* s = Lookup(e->lhs->name);
      if (s != nullptr && s->kind == Symbol::Kind::kFunc) {
        info.is_direct_call = true;
        info.callee = s;
        sig = s->sig.get();
        // Record binding for the callee expression too.
        ExprInfo callee_info;
        callee_info.sym = s;
        callee_info.type.shape = Types().FnPtrType(s->sig);
        callee_info.type.quals = {QualTerm::Const(Qual::kPublic)};
        tp_->expr_info.emplace(e->lhs.get(), std::move(callee_info));
      }
    }
    if (sig == nullptr) {
      const ExprInfo& ci = CheckExpr(e->lhs.get());
      if (!ci.type.IsValid()) {
        return info;
      }
      if (ci.type.shape->kind != TypeKind::kFnPtr) {
        diags_->Error(e->loc, "called object is not a function");
        return info;
      }
      // Indirect-call targets must be public (formal model: icall requires
      // the function pointer's taint ⊑ L).
      solver_.AddFlow(ci.type.quals[0], QualTerm::Const(Qual::kPublic), e->loc,
                      "indirect call target (function pointers must be public)");
      sig = ci.type.shape->fn_sig.get();
    }
    if (e->args.size() != sig->params.size()) {
      diags_->Error(e->loc, StrFormat("call expects %zu arguments, got %zu",
                                      sig->params.size(), e->args.size()));
      return info;
    }
    for (size_t i = 0; i < e->args.size(); ++i) {
      std::string what = StrFormat("argument %zu", i + 1);
      if (info.callee != nullptr) {
        what += " of '" + info.callee->name + "'";
      }
      CheckAssignTo(sig->params[i], e->args[i].get(), e->args[i]->loc, what);
    }
    info.type = sig->ret;
    return info;
  }

  // ---- Statements ----

  void CheckFunctionBody(FunctionSema* fs) {
    current_fn_ = fs;
    scopes_.clear();
    scopes_.emplace_back();
    for (size_t i = 0; i < fs->decl->params.size(); ++i) {
      const ParamDecl& p = fs->decl->params[i];
      Symbol* s = NewSymbol(Symbol::Kind::kParam, p.name, p.loc);
      s->type = fs->sym->sig->params[i];
      s->index = static_cast<uint32_t>(i);
      DeclareLocal(s);
      fs->params.push_back(s);
    }
    CheckStmt(fs->decl->body.get());
    scopes_.clear();
    current_fn_ = nullptr;
  }

  void RecordCondition(const Expr* e) { conditions_.push_back(e); }

  // ---- ct-mode helpers ----

  bool CtMode() const { return tp_->options.ct; }

  // Records that `what` at `loc` is illegal if any enclosing branch turns
  // out to be secret (checked after qualifier inference).
  void CtViolationIfGuarded(SourceLoc loc, const std::string& what) {
    if (CtMode() && !ct_guards_.empty()) {
      ct_obligations_.push_back({ct_guards_, loc, what});
    }
  }

  void CtRequirePublic(const QualTerm& term, SourceLoc loc,
                       const std::string& what) {
    if (CtMode()) {
      ct_public_reqs_.push_back({term, loc, what});
    }
  }

  // Assignments under a (possibly) secret branch: the branch condition flows
  // into the target, so inferred targets become private and declared-public
  // targets conflict with a solver diagnostic. This is exactly the implicit
  // flow the select-based linearization realizes: the merged value depends
  // on the condition.
  void CtFlowGuardsInto(const QualTerm& target, SourceLoc loc) {
    if (!CtMode()) {
      return;
    }
    for (const QualTerm& g : ct_guards_) {
      solver_.AddFlow(g, target, loc,
                      "assignment under a secret branch (implicit flow)");
    }
  }

  void CheckCondExpr(const Expr* e) {
    const ExprInfo& ci = CheckExpr(e);
    if (ci.type.IsValid() && !ci.type.shape->IsNumeric() && !ci.type.shape->IsPointer()) {
      diags_->Error(e->loc, "condition must be scalar");
    }
    RecordCondition(e);
  }

  void CheckStmt(const Stmt* s) {
    switch (s->kind) {
      case StmtKind::kExpr:
        CheckExpr(s->expr.get());
        return;
      case StmtKind::kDecl: {
        Symbol* sym = NewSymbol(Symbol::Kind::kLocal, s->decl_name, s->loc);
        sym->type = ResolveType(*s->decl_type, /*fresh_vars=*/true);
        RequireComplete(sym->type, s->loc, "local variable");
        if (sym->type.shape->kind == TypeKind::kVoid) {
          diags_->Error(s->loc, "variable cannot have type void");
        }
        sym->index = static_cast<uint32_t>(current_fn_->locals.size());
        current_fn_->locals.push_back(sym);
        if (CtMode() && sym->type.IsValid() &&
            sym->type.shape->kind == TypeKind::kFloat) {
          CtViolationIfGuarded(s->loc, "floating-point operation");
        }
        if (s->decl_init != nullptr) {
          if (sym->type.IsValid()) {
            CtFlowGuardsInto(sym->type.quals[0], s->loc);
          }
          CheckAssignTo(sym->type, s->decl_init.get(), s->loc,
                        StrFormat("initialization of '%s'", s->decl_name.c_str()));
        }
        DeclareLocal(sym);
        tp_->decl_sym[s] = sym;
        return;
      }
      case StmtKind::kIf: {
        CheckCondExpr(s->cond.get());
        // ct: the branch may be secret (and get linearized); everything in
        // the arms is checked under its guard.
        bool guarded = false;
        if (CtMode()) {
          const ExprInfo& ci = CheckExpr(s->cond.get());
          if (ci.type.IsValid()) {
            ct_guards_.push_back(ci.type.quals[0]);
            guarded = true;
          }
        }
        CheckStmt(s->then_stmt.get());
        if (s->else_stmt != nullptr) {
          CheckStmt(s->else_stmt.get());
        }
        if (guarded) {
          ct_guards_.pop_back();
        }
        return;
      }
      case StmtKind::kWhile: {
        CheckCondExpr(s->cond.get());
        CtViolationIfGuarded(s->loc, "loop");
        const ExprInfo& ci = CheckExpr(s->cond.get());
        if (ci.type.IsValid()) {
          CtRequirePublic(ci.type.quals[0], s->cond->loc, "loop condition");
        }
        ++loop_depth_;
        CheckStmt(s->body.get());
        --loop_depth_;
        return;
      }
      case StmtKind::kFor:
        scopes_.emplace_back();
        if (s->for_init != nullptr) {
          CheckStmt(s->for_init.get());
        }
        CtViolationIfGuarded(s->loc, "loop");
        if (s->cond != nullptr) {
          CheckCondExpr(s->cond.get());
          const ExprInfo& ci = CheckExpr(s->cond.get());
          if (ci.type.IsValid()) {
            CtRequirePublic(ci.type.quals[0], s->cond->loc, "loop condition");
          }
        }
        if (s->step != nullptr) {
          CheckExpr(s->step.get());
        }
        ++loop_depth_;
        CheckStmt(s->body.get());
        --loop_depth_;
        scopes_.pop_back();
        return;
      case StmtKind::kReturn: {
        CtViolationIfGuarded(s->loc, "return");
        const QType& ret = current_fn_->sym->sig->ret;
        if (ret.shape->kind == TypeKind::kVoid) {
          if (s->expr != nullptr) {
            diags_->Error(s->loc, "void function cannot return a value");
          }
          return;
        }
        if (s->expr == nullptr) {
          diags_->Error(s->loc, "non-void function must return a value");
          return;
        }
        CheckAssignTo(ret, s->expr.get(), s->loc,
                      StrFormat("return value of '%s'", current_fn_->decl->name.c_str()));
        return;
      }
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth_ == 0) {
          diags_->Error(s->loc, "break/continue outside a loop");
        }
        CtViolationIfGuarded(s->loc, "break/continue");
        return;
      case StmtKind::kBlock:
        scopes_.emplace_back();
        for (const auto& child : s->stmts) {
          CheckStmt(child.get());
        }
        scopes_.pop_back();
        return;
    }
  }

  // ---- Post-solve passes ----

  void CheckConditions() {
    if (tp_->options.all_private) {
      return;  // §5.1: implicit flows are vacuous in all-private mode
    }
    if (tp_->options.ct) {
      return;  // ct: secret branches are linearized; CheckCt() guards the rest
    }
    for (const Expr* e : conditions_) {
      auto it = tp_->expr_info.find(e);
      if (it == tp_->expr_info.end() || !it->second.type.IsValid()) {
        continue;
      }
      if (solver_.Resolve(it->second.type.quals[0]) == Qual::kPrivate) {
        if (tp_->options.implicit_flows == ImplicitFlowMode::kStrict) {
          diags_->Error(e->loc, "branching on private data (potential implicit flow)");
        } else {
          diags_->Warning(e->loc, "branching on private data (potential implicit flow)");
        }
      }
    }
  }

  // Post-solve ct diagnostics: everything the linearizer cannot make
  // oblivious must be provably secret-independent.
  void CheckCt() {
    if (!tp_->options.ct) {
      return;
    }
    for (const CtPublicReq& r : ct_public_reqs_) {
      if (solver_.Resolve(r.term) == Qual::kPrivate) {
        diags_->Error(r.loc, r.what + " must be public in a constant-time build");
      }
    }
    for (const CtObligation& o : ct_obligations_) {
      for (const QualTerm& g : o.guards) {
        if (solver_.Resolve(g) == Qual::kPrivate) {
          diags_->Error(o.loc, o.what +
                                   " under a secret branch cannot be made "
                                   "constant-time");
          break;
        }
      }
    }
  }

  void SubstituteQType(QType* t) {
    for (QualTerm& q : t->quals) {
      if (q.is_var) {
        q = QualTerm::Const(solver_.Resolve(q));
      }
    }
  }

  void Substitute() {
    for (auto& s : tp_->owned_symbols) {
      if (s->type.IsValid()) {
        SubstituteQType(&s->type);
      }
    }
    for (auto& [expr, info] : tp_->expr_info) {
      if (info.type.IsValid()) {
        SubstituteQType(&info.type);
      }
    }
  }

  std::unique_ptr<TypedProgram> tp_;
  DiagEngine* diags_;
  const ModuleInterfaceSet* interfaces_;
  QualSolver solver_;
  Qual default_qual_ = Qual::kPublic;

  std::map<std::string, Symbol*> file_scope_;
  std::vector<std::map<std::string, Symbol*>> scopes_;
  FunctionSema* current_fn_ = nullptr;
  int loop_depth_ = 0;
  std::vector<const Expr*> conditions_;

  // ---- Constant-time mode bookkeeping (SemaOptions::ct) ----
  // Qualifier terms of the enclosing secret-linearizable branches (if
  // conditions, short-circuit left operands) during the walk. Constructs the
  // linearizer cannot predicate record an obligation against a snapshot of
  // this stack; after Solve, an obligation whose guards include a private
  // term is an error.
  std::vector<QualTerm> ct_guards_;
  struct CtObligation {
    std::vector<QualTerm> guards;
    SourceLoc loc;
    std::string what;
  };
  std::vector<CtObligation> ct_obligations_;
  // Terms that must resolve public in ct mode regardless of context
  // (addresses, indexes, loop conditions, divisors).
  struct CtPublicReq {
    QualTerm term;
    SourceLoc loc;
    std::string what;
  };
  std::vector<CtPublicReq> ct_public_reqs_;
};

}  // namespace

std::unique_ptr<TypedProgram> RunSema(std::unique_ptr<Program> ast,
                                      const SemaOptions& options, DiagEngine* diags,
                                      const ModuleInterfaceSet* interfaces) {
  if (diags->HasErrors()) {
    return nullptr;
  }
  return Checker(std::move(ast), options, diags, interfaces).Run();
}

std::unique_ptr<TypedProgram> TypedProgram::Clone() const {
  auto out = std::make_unique<TypedProgram>();
  AstCloneMap ast_map;
  out->ast = CloneProgram(*ast, &ast_map);
  TypeCloneMaps type_maps;
  out->types = types->Clone(&type_maps);
  out->options = options;
  out->num_qual_vars = num_qual_vars;
  out->num_constraints = num_constraints;
  out->solver_stats = solver_stats;

  std::unordered_map<const Symbol*, Symbol*> sym_map;
  out->owned_symbols.reserve(owned_symbols.size());
  for (const auto& s : owned_symbols) {
    auto ns = std::make_unique<Symbol>(*s);
    ns->type = RemapQType(s->type, type_maps);
    ns->sig = CloneFnSig(s->sig, &type_maps);
    sym_map[s.get()] = ns.get();
    out->owned_symbols.push_back(std::move(ns));
  }
  auto remap_sym = [&sym_map](Symbol* s) -> Symbol* {
    return s == nullptr ? nullptr : sym_map.at(s);
  };

  out->expr_info.reserve(expr_info.size());
  for (const auto& [expr, info] : expr_info) {
    ExprInfo ni = info;
    ni.type = RemapQType(info.type, type_maps);
    ni.sym = remap_sym(info.sym);
    ni.callee = remap_sym(info.callee);
    out->expr_info.emplace(ast_map.exprs.at(expr), std::move(ni));
  }
  out->decl_sym.reserve(decl_sym.size());
  for (const auto& [stmt, sym] : decl_sym) {
    out->decl_sym.emplace(ast_map.stmts.at(stmt), remap_sym(sym));
  }
  for (Symbol* g : globals) {
    out->globals.push_back(remap_sym(g));
  }
  for (Symbol* t : trusted_imports) {
    out->trusted_imports.push_back(remap_sym(t));
  }
  for (Symbol* m : module_imports) {
    out->module_imports.push_back(remap_sym(m));
  }
  out->functions.reserve(functions.size());
  for (const FunctionSema& f : functions) {
    FunctionSema nf;
    nf.decl = ast_map.funcs.at(f.decl);
    nf.sym = remap_sym(f.sym);
    for (Symbol* p : f.params) {
      nf.params.push_back(remap_sym(p));
    }
    for (Symbol* l : f.locals) {
      nf.locals.push_back(remap_sym(l));
    }
    out->functions.push_back(std::move(nf));
  }
  return out;
}

}  // namespace confllvm
