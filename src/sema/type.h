// Semantic types for MiniC.
//
// A semantic type separates *shape* (int/char/float/void/struct/ptr/array/
// fnptr — interned in a TypeContext) from *qualifiers*. A qualified type
// (QType) pairs a shape with one qualifier term per level of its pointer
// spine:
//   level 0            taint of the value itself
//   level 1..N         taint of successive pointees
// Arrays share their element's level (an object lives wholly in one region,
// paper §5.1); struct/fnptr shapes terminate the spine (fields inherit their
// outermost qualifier from the enclosing object on access).
#ifndef CONFLLVM_SRC_SEMA_TYPE_H_
#define CONFLLVM_SRC_SEMA_TYPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace confllvm {

// The two-point information-flow lattice: kPublic ⊑ kPrivate.
enum class Qual : uint8_t { kPublic = 0, kPrivate = 1 };

inline Qual JoinQual(Qual a, Qual b) {
  return (a == Qual::kPrivate || b == Qual::kPrivate) ? Qual::kPrivate : Qual::kPublic;
}
inline bool QualLe(Qual a, Qual b) {  // a ⊑ b
  return a == Qual::kPublic || b == Qual::kPrivate;
}
inline const char* QualName(Qual q) {
  return q == Qual::kPrivate ? "private" : "public";
}

// A qualifier term: either a constant or an inference variable to be solved
// (paper §5.1 runs type-qualifier inference over the IR; we run it in sema).
struct QualTerm {
  bool is_var = false;
  Qual value = Qual::kPublic;
  uint32_t var = 0;

  static QualTerm Const(Qual q) { return QualTerm{false, q, 0}; }
  static QualTerm Var(uint32_t v) { return QualTerm{true, Qual::kPublic, v}; }
};

enum class TypeKind : uint8_t {
  kVoid,
  kInt,    // 64-bit signed
  kChar,   // 8-bit
  kFloat,  // 64-bit IEEE double
  kStruct,
  kPointer,
  kArray,
  kFnPtr,
};

struct StructInfo;
struct Type;

// A qualified type: shape + per-level qualifier terms.
struct QType {
  const Type* shape = nullptr;
  std::vector<QualTerm> quals;

  bool IsValid() const { return shape != nullptr; }
};

// Signature of a function / function pointer. Qualifiers in signatures are
// always concrete (top-level annotations are required, paper §2).
struct FnSig {
  QType ret;
  std::vector<QType> params;
};

struct Type {
  TypeKind kind = TypeKind::kVoid;
  const Type* elem = nullptr;   // kPointer / kArray
  uint64_t array_len = 0;       // kArray
  const StructInfo* struct_info = nullptr;  // kStruct
  std::shared_ptr<FnSig> fn_sig;            // kFnPtr

  bool IsInteger() const { return kind == TypeKind::kInt || kind == TypeKind::kChar; }
  bool IsNumeric() const { return IsInteger() || kind == TypeKind::kFloat; }
  bool IsPointer() const { return kind == TypeKind::kPointer; }
  bool IsArray() const { return kind == TypeKind::kArray; }
};

struct StructField {
  std::string name;
  QType type;        // concrete quals; level 0 inherited on access
  uint64_t offset = 0;
};

struct StructInfo {
  std::string name;
  std::vector<StructField> fields;
  uint64_t size = 0;
  uint64_t align = 1;
  bool defined = false;

  const StructField* FindField(const std::string& n) const {
    for (const auto& f : fields) {
      if (f.name == n) {
        return &f;
      }
    }
    return nullptr;
  }
};

// Pointer correspondences recorded by TypeContext::Clone: original node ->
// clone. Shapes are interned by pointer identity, so everything that stores a
// `const Type*` / `StructInfo*` / `FnSig` (QTypes, symbols, expr side tables)
// must be remapped through these when a checked program is deep-copied.
struct TypeCloneMaps {
  std::unordered_map<const Type*, const Type*> types;
  std::unordered_map<const StructInfo*, StructInfo*> structs;
  std::unordered_map<const FnSig*, std::shared_ptr<FnSig>> sigs;
};

// Owns and interns type shapes. One per compilation.
class TypeContext {
 public:
  TypeContext();

  const Type* VoidType() const { return void_; }
  const Type* IntType() const { return int_; }
  const Type* CharType() const { return char_; }
  const Type* FloatType() const { return float_; }
  const Type* PointerTo(const Type* elem);
  const Type* ArrayOf(const Type* elem, uint64_t len);
  const Type* StructType(const std::string& name);  // creates fwd decl on demand
  const Type* FnPtrType(std::shared_ptr<FnSig> sig);

  // Defines (or redefines — caller checks) a struct's fields and layout.
  StructInfo* GetOrCreateStruct(const std::string& name);

  // Object size / alignment; arrays multiply, structs use computed layout.
  uint64_t SizeOf(const Type* t) const;
  uint64_t AlignOf(const Type* t) const;

  // Number of qualifier levels along the pointer spine.
  static size_t NumLevels(const Type* t);

  // Builds a QType over `shape` with all levels set to `q`.
  QType MakeQType(const Type* shape, Qual q) const;

  std::string ToString(const Type* t) const;
  std::string ToString(const QType& t) const;

  // Deep-copies the context: every Type node, StructInfo, and reachable
  // FnSig is duplicated and the interning caches are rebuilt over the new
  // pointers, so the clone interns independently of the original. `maps`
  // receives the correspondences for remapping QTypes held outside the
  // context.
  std::unique_ptr<TypeContext> Clone(TypeCloneMaps* maps) const;

 private:
  const Type* Intern(Type t);

  std::vector<std::unique_ptr<Type>> types_;
  std::vector<std::unique_ptr<StructInfo>> structs_;
  std::map<std::string, StructInfo*> struct_by_name_;
  std::map<std::pair<const Type*, uint64_t>, const Type*> array_cache_;
  std::map<const Type*, const Type*> pointer_cache_;
  const Type* void_;
  const Type* int_;
  const Type* char_;
  const Type* float_;
};

// Rewrites a QType's shape pointer through `maps` (qualifier terms are
// values and copy as-is). Null shapes pass through unchanged.
QType RemapQType(const QType& t, const TypeCloneMaps& maps);

// Deep-copies a signature, remapping its QTypes and deduplicating through
// `maps->sigs` so aliasing (the same FnSig shared by a type and a symbol)
// survives the clone. Null stays null.
std::shared_ptr<FnSig> CloneFnSig(const std::shared_ptr<FnSig>& sig,
                                  TypeCloneMaps* maps);

}  // namespace confllvm

#endif  // CONFLLVM_SRC_SEMA_TYPE_H_
