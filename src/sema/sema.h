// MiniC semantic analysis: name resolution, type checking, and qualifier
// inference (paper §5.1).
//
// Outputs a TypedProgram in which every expression and symbol carries a
// fully *concrete* qualified type: inference variables introduced for local
// declarations are solved by QualSolver and substituted before the result is
// handed to IR generation.
#ifndef CONFLLVM_SRC_SEMA_SEMA_H_
#define CONFLLVM_SRC_SEMA_SEMA_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/lang/ast.h"
#include "src/sema/module_interface.h"
#include "src/sema/qual_solver.h"
#include "src/sema/type.h"
#include "src/support/diag.h"

namespace confllvm {

struct Symbol {
  enum class Kind : uint8_t { kLocal, kParam, kGlobal, kFunc };
  enum class InitKind : uint8_t { kNone, kInt, kFloat, kString };

  Kind kind = Kind::kLocal;
  std::string name;
  QType type;  // concrete after sema; kFunc: unused (see sig)
  std::shared_ptr<FnSig> sig;  // kFunc
  bool is_trusted_import = false;  // kFunc with no body anywhere => import from T
  // kFunc imported via `import "module"` from another U module: call sites
  // type-check against the interface signature; the body lives in the other
  // module's binary and the call edge is resolved by the linker.
  bool is_module_import = false;
  std::string module;  // defining module (is_module_import only)
  uint32_t index = 0;  // param position / local ordinal / global ordinal / import slot
  SourceLoc loc;

  // Global initializer (constant), if any.
  InitKind init_kind = InitKind::kNone;
  int64_t init_int = 0;
  double init_float = 0;
  std::string init_str;
};

struct ExprInfo {
  QType type;  // concrete after sema
  bool is_lvalue = false;
  Symbol* sym = nullptr;          // kVarRef binding (var or function)
  bool is_direct_call = false;    // kCall to a named function symbol
  Symbol* callee = nullptr;       // direct call target
};

struct FunctionSema {
  const FuncDecl* decl = nullptr;
  Symbol* sym = nullptr;
  std::vector<Symbol*> params;
  std::vector<Symbol*> locals;  // flattened across blocks, unique per decl site
};

// How to treat branches on private data (paper §2: experiments run in the
// stricter mode that disallows them).
enum class ImplicitFlowMode : uint8_t {
  kWarn,    // default ConfLLVM behaviour: warn on private branch
  kStrict,  // reject private branches (no implicit flows possible)
};

struct SemaOptions {
  ImplicitFlowMode implicit_flows = ImplicitFlowMode::kStrict;
  // §5.1 all-private mode: every unannotated qualifier defaults to private
  // and private branches are permitted (implicit flows are vacuous).
  bool all_private = false;
  // Constant-time preset: branches on private data are *allowed* (the Opt
  // pipeline linearizes them into selects), but everything the
  // linearization cannot make oblivious is rejected here: private loop
  // conditions, private array indexes / pointer dereferences, private
  // divisors, and — under a secret branch — calls, returns, loops, float
  // operations, and divisions. Assignments under a secret branch pick up a
  // flow from the branch condition, so their targets are forced private
  // (explicit implicit-flow tracking).
  bool ct = false;
};

struct TypedProgram {
  std::unique_ptr<Program> ast;
  std::unique_ptr<TypeContext> types;
  SemaOptions options;

  std::vector<std::unique_ptr<Symbol>> owned_symbols;
  std::unordered_map<const Expr*, ExprInfo> expr_info;
  std::unordered_map<const Stmt*, Symbol*> decl_sym;  // kDecl stmt -> local
  std::vector<Symbol*> globals;                       // declaration order
  std::vector<FunctionSema> functions;                // defined (U) functions
  std::vector<Symbol*> trusted_imports;               // externals table order
  std::vector<Symbol*> module_imports;                // cross-module call slots

  // Inference statistics (reported by tooling and the pipeline's per-stage
  // stats).
  size_t num_qual_vars = 0;
  size_t num_constraints = 0;
  QualSolverStats solver_stats;

  // Deep-copies the checked program: the AST, the TypeContext, and every
  // symbol are duplicated and all cross-references (expr side tables, decl
  // bindings, signature sharing) are remapped onto the clones. The result is
  // fully independent of *this — IR generation may run on both concurrently —
  // which is what lets the artifact cache hand one cached sema result to many
  // pipeline invocations (src/driver/artifact_cache.h).
  std::unique_ptr<TypedProgram> Clone() const;

  const ExprInfo& Info(const Expr* e) const { return expr_info.at(e); }
  const FunctionSema* FindFunction(const std::string& name) const {
    for (const auto& f : functions) {
      if (f.decl->name == name) {
        return &f;
      }
    }
    return nullptr;
  }
};

// Runs semantic analysis. Returns nullptr if `diags` holds errors.
// `interfaces` (nullable) resolves the program's `import "m"` declarations:
// each imported module's exported signatures are declared as callable
// symbols, and call sites are qualifier-checked against them without the
// callee bodies ever being visible (separate compilation). A program with
// import declarations but no matching interface is an error.
std::unique_ptr<TypedProgram> RunSema(std::unique_ptr<Program> ast,
                                      const SemaOptions& options, DiagEngine* diags,
                                      const ModuleInterfaceSet* interfaces = nullptr);

}  // namespace confllvm

#endif  // CONFLLVM_SRC_SEMA_SEMA_H_
