#include "src/sema/module_interface.h"

#include "src/support/bytes.h"

namespace confllvm {

namespace {

const char* BaseName(InterfaceType::Base b) {
  switch (b) {
    case InterfaceType::Base::kInt: return "int";
    case InterfaceType::Base::kChar: return "char";
    case InterfaceType::Base::kFloat: return "float";
    case InterfaceType::Base::kVoid: return "void";
  }
  return "?";
}

// Converts written type syntax to an InterfaceType. Returns false for shapes
// that do not cross module boundaries (struct / array / fnptr). Mirrors
// Checker::ResolveType with fresh_vars=false: explicit `private` wins,
// unannotated levels take the default qualifier.
bool SyntaxToInterface(const TypeSyntax& ts, Qual default_qual,
                       InterfaceType* out) {
  if (!ts.array_dims.empty() || ts.base == TypeSyntax::Base::kFnPtr ||
      ts.base == TypeSyntax::Base::kStruct) {
    return false;
  }
  switch (ts.base) {
    case TypeSyntax::Base::kInt: out->base = InterfaceType::Base::kInt; break;
    case TypeSyntax::Base::kChar: out->base = InterfaceType::Base::kChar; break;
    case TypeSyntax::Base::kFloat: out->base = InterfaceType::Base::kFloat; break;
    case TypeSyntax::Base::kVoid: out->base = InterfaceType::Base::kVoid; break;
    default: return false;
  }
  out->ptr_levels = static_cast<uint32_t>(ts.pointers.size());
  out->quals.assign(out->ptr_levels + 1, default_qual);
  // Level (levels-1) is the base; pointer level i (innermost-first in the
  // syntax) is levels-2-i — the same numbering ResolveType uses.
  const size_t levels = out->quals.size();
  if (ts.base_private) {
    out->quals[levels - 1] = Qual::kPrivate;
  }
  for (size_t i = 0; i < ts.pointers.size(); ++i) {
    if (ts.pointers[i].is_private) {
      out->quals[levels - 2 - i] = Qual::kPrivate;
    }
  }
  return true;
}

}  // namespace

std::string InterfaceType::ToText() const {
  // Outermost-first qualifier list, then the shape: "pub*priv int".
  std::string s;
  for (size_t i = 0; i < quals.size(); ++i) {
    s += quals[i] == Qual::kPrivate ? "H" : "L";
  }
  s += ":";
  s += BaseName(base);
  for (uint32_t i = 0; i < ptr_levels; ++i) {
    s += "*";
  }
  return s;
}

std::string InterfaceFn::ToText() const {
  std::string s = name + "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i != 0) {
      s += ",";
    }
    s += params[i].ToText();
  }
  s += ")->" + ret.ToText();
  return s;
}

const InterfaceFn* ModuleInterface::Find(const std::string& name) const {
  for (const InterfaceFn& f : functions) {
    if (f.name == name) {
      return &f;
    }
  }
  return nullptr;
}

std::string ModuleInterface::ToText() const {
  std::string s = "module " + module + "\n";
  for (const InterfaceFn& f : functions) {
    s += f.ToText() + "\n";
  }
  return s;
}

uint64_t ModuleInterface::Fingerprint() const {
  // FNV-1a 64 over the canonical rendering.
  const std::string text = ToText();
  return Fnv1a64(reinterpret_cast<const uint8_t*>(text.data()), text.size());
}

void ModuleInterfaceSet::Add(ModuleInterface iface) {
  by_name_[iface.module] = std::move(iface);
}

const ModuleInterface* ModuleInterfaceSet::Find(const std::string& module) const {
  const auto it = by_name_.find(module);
  return it == by_name_.end() ? nullptr : &it->second;
}

ModuleInterface ExtractModuleInterface(const Program& ast,
                                       const std::string& module_name,
                                       bool all_private) {
  const Qual default_qual = all_private ? Qual::kPrivate : Qual::kPublic;
  ModuleInterface mi;
  mi.module = module_name;
  for (const FuncDecl& fd : ast.functions) {
    if (fd.body == nullptr) {
      continue;  // declaration only: a trusted import, not an export
    }
    InterfaceFn f;
    f.name = fd.name;
    if (!SyntaxToInterface(*fd.ret_type, default_qual, &f.ret)) {
      continue;
    }
    bool exportable = fd.params.size() <= 4;
    for (const ParamDecl& p : fd.params) {
      InterfaceType pt;
      if (!SyntaxToInterface(*p.type, default_qual, &pt)) {
        exportable = false;
        break;
      }
      f.params.push_back(std::move(pt));
    }
    if (!exportable || mi.Find(f.name) != nullptr) {
      continue;
    }
    mi.functions.push_back(std::move(f));
  }
  return mi;
}

}  // namespace confllvm
