// Runs the §7.2 mini-NGINX under full ConfLLVM: serves requests, shows the
// public access log, and demonstrates that served (private) file content
// leaves U only as ciphertext.
//
// Build & run:  ./build/examples/webserver
#include <cstdio>

#include "bench/workloads.h"
#include "src/driver/confcc.h"
#include "src/verifier/verifier.h"

using namespace confllvm;

int main() {
  printf("=== mini-NGINX under ConfLLVM (OurMPX) ===\n");
  DiagEngine diags;
  auto s = MakeSession(workloads::kNginx, BuildPreset::kOurMpx, &diags);
  if (s == nullptr) {
    printf("compile failed:\n%s", diags.ToString().c_str());
    return 1;
  }
  VerifyResult v = Verify(*s->compiled->prog);
  printf("ConfVerify: %s (%zu procedures)\n", v.ok ? "ok" : "REJECTED", v.procedures);

  s->tlib->AddFile("index.html", "<html>public landing page</html>");
  s->tlib->AddFile("salaries.csv", "alice,250000\nbob,180000\n");
  s->tlib->PushRx(0, "GET index.html\n");
  s->tlib->PushRx(0, "GET salaries.csv\n");
  s->tlib->PushRx(0, "GET missing.txt\n");

  auto r = s->vm->Call("server_run", {3});
  printf("served %llu requests in %.3f simulated ms (%llu instructions)\n",
         static_cast<unsigned long long>(r.ret), r.cycles / 3.4e9 * 1e3,
         static_cast<unsigned long long>(r.instrs));

  printf("\n-- public access log --\n%s", s->tlib->log().c_str());
  printf("-- confidentiality --\n");
  printf("plaintext salary data on the wire? %s\n",
         s->tlib->PublicOutputContains("alice,250000") ? "LEAKED" : "no (encrypted)");
  printf("response bytes sent: %zu\n", s->tlib->SentBytes(0).size());
  return r.ok && v.ok ? 0 : 1;
}
