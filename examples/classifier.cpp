// Runs the §7.4 Privado-style enclave classifier: the model and the image
// are private; the only value that ever leaves the (simulated) enclave is
// the class label, through the send_result declassifier.
//
// Build & run:  ./build/examples/classifier
#include <cstdio>

#include "bench/workloads.h"
#include "src/driver/confcc.h"
#include "src/verifier/verifier.h"

using namespace confllvm;

int main() {
  printf("=== Privado-style NN classifier in a simulated enclave (OurMPX) ===\n");
  DiagEngine diags;
  auto s = MakeSession(workloads::kPrivado, BuildPreset::kOurMpx, &diags);
  if (s == nullptr) {
    printf("compile failed:\n%s", diags.ToString().c_str());
    return 1;
  }
  VerifyResult v = Verify(*s->compiled->prog);
  printf("ConfVerify: %s\n", v.ok ? "ok" : "REJECTED");

  s->vm->Call("nn_init", {});
  for (uint64_t img = 0; img < 5; ++img) {
    s->vm->Call("nn_stage_image", {img * 31 + 3});
    auto r = s->vm->Call("nn_classify", {});
    if (!r.ok) {
      printf("classify fault: %s\n", r.fault_msg.c_str());
      return 1;
    }
    printf("image %llu -> class %d  (%.3f simulated ms, %llu MPX checks)\n",
           static_cast<unsigned long long>(img),
           static_cast<int>(s->tlib->declassified().back()), r.cycles / 3.4e9 * 1e3,
           static_cast<unsigned long long>(s->vm->stats().check_instrs));
  }
  printf("declassified bytes total: %zu (one label per image — nothing else left U)\n",
         s->tlib->declassified().size());
  return 0;
}
