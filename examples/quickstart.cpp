// Quickstart: annotate a secret, compile with ConfLLVM, watch the compiler
// reject the leak, then fix the program and run it end to end — including
// binary verification with ConfVerify (the paper's Figure 1/2 workflow).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/driver/confcc.h"
#include "src/verifier/verifier.h"

using namespace confllvm;

namespace {

// The Figure-1 web server bug: handleReq "inadvertently copies the password
// to the log file".
const char* kBuggy = R"(
int send(int fd, char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);
int authenticate(char *uname, private char *upass, private char *pass) { return 1; }
void handleReq(char *uname, private char *upasswd, char *out, int out_size) {
  private char passwd[64];
  read_passwd(uname, passwd, 64);
  authenticate(uname, upasswd, passwd);
  send(7, passwd, 64);   // BUG: clear-text password to the log channel
}
int main() { return 0; }
)";

const char* kFixed = R"(
int send(int fd, char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);
int encrypt(private char *pt, char *ct, int n);
int authenticate(char *uname, private char *upass, private char *pass) { return 1; }
void handleReq(char *uname, private char *upasswd, char *out, int out_size) {
  private char passwd[64];
  read_passwd(uname, passwd, 64);
  authenticate(uname, upasswd, passwd);
  char enc[64];
  encrypt(passwd, enc, 64);   // declassify through T
  send(7, enc, 64);
}
int main() {
  char uname[8];
  uname[0] = 'a'; uname[1] = 0;
  private char pw[64];
  read_passwd(uname, pw, 64);
  handleReq(uname, pw, NULL, 0);
  return 17;
}
)";

}  // namespace

int main() {
  printf("=== ConfLLVM quickstart ===\n\n");

  printf("[1] Compiling the buggy Figure-1 server with ConfLLVM (OurMPX)...\n");
  {
    DiagEngine diags;
    auto s = MakeSession(kBuggy, BuildPreset::kOurMpx, &diags);
    if (s == nullptr) {
      printf("    rejected, as the paper promises:\n%s\n", diags.ToString().c_str());
    } else {
      printf("    UNEXPECTED: the leak compiled!\n");
      return 1;
    }
  }

  printf("[2] Compiling the fixed server (declassify via T's encrypt)...\n");
  DiagEngine diags;
  auto s = MakeSession(kFixed, BuildPreset::kOurMpx, &diags);
  if (s == nullptr) {
    printf("    compile failed:\n%s\n", diags.ToString().c_str());
    return 1;
  }
  printf("    ok: %zu code words, %llu bounds checks emitted\n",
         s->compiled->prog->binary.code.size(),
         static_cast<unsigned long long>(s->compiled->codegen_stats.bnd_checks_emitted));

  printf("[3] Verifying the binary with ConfVerify (compiler out of the TCB)...\n");
  VerifyResult v = Verify(*s->compiled->prog);
  printf("    %s (%zu procedures)\n", v.ok ? "VERIFIED" : "REJECTED", v.procedures);
  if (!v.ok) {
    printf("%s", v.ErrorText().c_str());
    return 1;
  }

  printf("[4] Running on the VM...\n");
  s->tlib->SetPassword("a", "hunter2-secret");
  auto r = s->vm->Call("main", {});
  printf("    main() -> %llu (%s), %llu instructions, %llu cycles\n",
         static_cast<unsigned long long>(r.ret), r.ok ? "ok" : FaultName(r.fault),
         static_cast<unsigned long long>(r.instrs),
         static_cast<unsigned long long>(r.cycles));

  const bool leaked = s->tlib->PublicOutputContains("hunter2-secret");
  printf("[5] Password on any public channel? %s\n", leaked ? "LEAKED!" : "no — only "
         "ciphertext left U");
  return leaked || !r.ok ? 1 : 0;
}
