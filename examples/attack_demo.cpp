// The three vulnerability-injection experiments of §7.6, run live:
//   1. Mongoose-style stale-stack disclosure across requests,
//   2. Minizip-style cast-hidden password leak,
//   3. printf-style format-string over-read.
// Each exploit is attempted against the Base build (it succeeds) and the
// full ConfLLVM builds (it is stopped).
//
// Build & run:  ./build/examples/attack_demo
#include <cstdio>
#include <functional>

#include "src/driver/confcc.h"

using namespace confllvm;

namespace {

// (1) A server with a buffer-bounds bug: the response length is client
// controlled, so a "public file" response can ship stale stack bytes from a
// previous request that handled a private file. ConfLLVM stops it because
// the private file content lived on the *private* stack (paper §7.6).
const char* kMongoose = R"(
int send(int fd, char *buf, int n);
int read_file_private(char *name, private char *buf, int n);

int handle_private(char *fname) {
  char hdr[128];                   // request-parsing scratch
  private char fbuf[64];           // private file content on the stack
  hdr[0] = 'h';
  read_file_private(fname, fbuf, 64);
  return 0;
}

int handle_public(int out_size) {
  char resp[16];
  char scratch[512];                // parsing scratch below the response
  scratch[0] = 's';
  for (int i = 0; i < 16; i = i + 1) { resp[i] = 'p'; }
  // BUG: out_size is attacker controlled; sends stale stack past resp[16],
  // sweeping across this frame — where the previous request's private file
  // bytes still sit when there is only one stack.
  send(0, resp, out_size);
  return 0;
}
)";

// (2) Minizip-style: the password is annotated private, but pointer casts
// hide the flow from the static analysis (paper: "impossible to detect the
// leak statically. But, then, the dynamic checks ... prevent the leak").
const char* kMinizip = R"(
int log_write(char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);

int compress_and_log(char *uname) {
  private char password[32];
  read_passwd(uname, password, 32);
  // Cast chain strips the annotation: statically this is a public char*.
  int addr = (int)(private char*)password;
  char *laundered = (char*)addr;
  log_write(laundered, 32);   // leak attempt to the public log
  return 0;
}
)";

// (3) Format-string: the formatter trusts the directive count in fmt, not
// the argument count, and reads past the argument array into the frame —
// where, without ConfLLVM, the private key material sits.
const char* kFormat = R"(
int send(int fd, char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);

int count_directives(char *fmt) {
  int n = 0;
  int i = 0;
  while (fmt[i] != 0) {
    if (fmt[i] == '%') { n = n + 1; }
    i = i + 1;
  }
  return n;
}

// mini_sprintf(out, fmt, args, nargs): BUG — reads args[0..directives)
// ignoring nargs (the vararg over-read of the paper's printf experiment).
int mini_sprintf(char *out, char *fmt, int *args, int nargs) {
  int directives = count_directives(fmt);
  int o = 0;
  for (int a = 0; a < directives; a = a + 1) {
    int v = args[a];                  // over-reads past nargs!
    for (int b = 0; b < 8; b = b + 1) {
      out[o] = (char)((v >> (b * 8)) & 255);
      o = o + 1;
    }
  }
  return o;
}

int handle(char *fmt) {
  int fmt_args[2];                    // frame order: args first ...
  private int secret[4];              // ... the private key right after
  char uname[8];
  uname[0] = 'u'; uname[1] = 0;
  read_passwd(uname, (private char*)secret, 32);
  fmt_args[0] = 1;
  fmt_args[1] = 2;
  char out[128];
  int n = mini_sprintf(out, fmt, fmt_args, 2);
  send(0, out, n);
  return n;
}
)";

// Writes a NUL-terminated string into U's public heap area (simulating
// attacker-supplied input already residing in U memory) and returns its
// address.
uint64_t StageString(Session* s, const std::string& str) {
  const uint64_t addr = s->compiled->prog->map.pub_heap + 0x10000;
  s->vm->memory().WriteBytes(addr, str.c_str(), str.size() + 1);
  return addr;
}

void RunAttempt(const char* source, BuildPreset preset,
                const std::function<void(Session*)>& setup,
                const std::function<bool(Session*)>& drive, const char* secret) {
  DiagEngine diags;
  auto s = MakeSession(source, preset, &diags);
  if (s == nullptr) {
    printf("  %-10s compile-time rejection:\n%s", PresetName(preset),
           diags.ToString().c_str());
    return;
  }
  setup(s.get());
  const bool completed = drive(s.get());
  const bool leaked = s->tlib->PublicOutputContains(secret);
  printf("  %-10s %-34s -> %s\n", PresetName(preset),
         completed ? "exploit ran to completion" : "exploit stopped by a fault",
         leaked ? "SECRET LEAKED" : "no leak");
}

}  // namespace

int main() {
  const std::string kSecret = "TOPSECRETPASSWORD";

  printf("=== §7.6 vulnerability injection ===\n");

  printf("\n[1] Mongoose-style stale-stack disclosure (overlong response):\n");
  for (BuildPreset p : {BuildPreset::kBase, BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    RunAttempt(
        kMongoose, p,
        [&](Session* s) { s->tlib->AddFile("private.txt", kSecret + kSecret); },
        [&](Session* s) {
          auto r1 = s->vm->Call("handle_private", {StageString(s, "private.txt")});
          if (!r1.ok) {
            return false;
          }
          auto r2 = s->vm->Call("handle_public", {512});  // exploit request
          return r2.ok;
        },
        kSecret.c_str());
  }

  printf("\n[2] Minizip-style cast-hidden password leak:\n");
  for (BuildPreset p : {BuildPreset::kBase, BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    RunAttempt(
        kMinizip, p,
        [&](Session* s) { s->tlib->SetPassword("zipuser", kSecret); },
        [&](Session* s) {
          auto r = s->vm->Call("compress_and_log", {StageString(s, "zipuser")});
          return r.ok;
        },
        kSecret.c_str());
  }

  printf("\n[3] Format-string over-read (extra %%d directives):\n");
  for (BuildPreset p : {BuildPreset::kBase, BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    RunAttempt(
        kFormat, p,
        [&](Session* s) { s->tlib->SetPassword("u", kSecret); },
        [&](Session* s) {
          auto r = s->vm->Call("handle", {StageString(s, "%d%d%d%d%d%d")});
          return r.ok;
        },
        kSecret.c_str());
  }
  printf("\nExpected: every exploit leaks under Base and is stopped (fault or\n"
         "no-leak) under OurMPX/OurSeg, as in the paper.\n");
  return 0;
}
