// Separate compilation end to end: module imports (lang/sema), the build
// graph and wave scheduler (driver), the confidentiality-preserving linker
// (isa), and link-time ConfVerify (verifier):
//
//   * a 3-module program with cross-module calls compiles, links, loads,
//     and runs bit-identically on the reference and fast VM engines across
//     all eight presets;
//   * a qualifier-mismatched import is rejected at sema time; when the
//     interface is forged *post-sema*, the linker's contract check rejects
//     the edge, and when the linker's metadata is forged as well, link-time
//     ConfVerify rejects the merged image from first principles;
//   * on a warm cache, a body-only edit recompiles exactly the edited
//     module while an exported-signature edit dirties exactly its
//     dependents;
//   * graph hygiene (unknown imports, self-imports, cycles, duplicate
//     modules/functions), linker table merging (trusted-import dedup,
//     global/function relocation), and the loader's rejection of unlinked
//     binaries.
#include <gtest/gtest.h>

#include <filesystem>

#include "src/driver/artifact_cache.h"
#include "src/driver/build_graph.h"
#include "src/driver/confcc.h"
#include "src/driver/pipeline.h"
#include "src/isa/link.h"
#include "src/lang/parser.h"
#include "src/runtime/loader.h"
#include "src/sema/module_interface.h"
#include "src/verifier/verifier.h"
#include "tests/test_util.h"

namespace confllvm {
namespace {

using testutil::ExpectSameResult;
using testutil::ExpectSameStats;

// ---- the 3-module workload ----
//
// leaf:   pure arithmetic + a private helper.
// mid:    imports leaf; re-exports a derived computation.
// app:    imports both; main() mixes cross-module public data with local
//         private data and returns a checksum.

constexpr char kLeafSrc[] = R"(
int square(int x) { return x * x; }
private int seal(private int s, int k) { return s * 3 + k; }
int bump(int x) { return x + 1; }
)";

constexpr char kMidSrc[] = R"(
import "leaf";
int cube(int x) { return x * square(x); }
int twice_bumped(int x) { return bump(bump(x)); }
)";

constexpr char kAppSrc[] = R"(
import "leaf";
import "mid";
int main() {
  private int secret = 41;
  private int sealed = seal(secret, 4);
  int pub = cube(3) + twice_bumped(5);
  int acc = 0;
  for (int i = 0; i < 4; i = i + 1) {
    acc = acc + square(i) + pub;
  }
  sealed = sealed + 1;
  return acc;
}
)";

std::unique_ptr<BuildGraph> MakeGraph(const BuildConfig& config, DiagEngine* diags,
                                      ArtifactCache* cache = nullptr,
                                      const char* leaf = kLeafSrc,
                                      const char* mid = kMidSrc,
                                      const char* app = kAppSrc) {
  auto g = std::make_unique<BuildGraph>();
  EXPECT_TRUE(g->AddModule("leaf", leaf, diags));
  EXPECT_TRUE(g->AddModule("mid", mid, diags));
  EXPECT_TRUE(g->AddModule("app", app, diags));
  if (!g->Finalize(config, diags, cache)) {
    return nullptr;
  }
  return g;
}

LinkedBuild BuildAll(const BuildGraph& graph, const BuildConfig& config,
                     bool verify, ArtifactCache* cache = nullptr) {
  BuildScheduler::Options opts;
  opts.verify = verify && WantsVerify(config);
  BuildScheduler sched(&graph, config, opts);
  return sched.Run(cache);
}

std::string AllDiags(const LinkedBuild& b) {
  std::string s = b.diags.ToString();
  for (const ModuleOutcome& mo : b.modules) {
    if (mo.invocation != nullptr) {
      s += mo.invocation->diags().ToString();
    }
  }
  return s;
}

// Wraps a LinkedBuild's program in a runnable session under `engine`.
std::unique_ptr<Session> SessionFor(LinkedBuild build, const BuildConfig& config,
                                    VmEngine engine) {
  if (!build.ok) {
    return nullptr;
  }
  auto cp = std::make_unique<CompiledProgram>();
  cp->config = config;
  cp->prog = std::move(build.prog);
  VmOptions vopts;
  vopts.engine = engine;
  return MakeSessionFor(std::move(cp), vopts);
}

// ---- tentpole: 3 modules × 8 presets × 2 engines, bit-identical ----

TEST(LinkedProgram, RunsIdenticallyOnBothEnginesUnderAllPresets) {
  ArtifactCache cache;
  for (const BuildPreset preset : kAllBuildPresets) {
    SCOPED_TRACE(PresetName(preset));
    const BuildConfig config = BuildConfig::For(preset);
    DiagEngine gd;
    auto graph = MakeGraph(config, &gd, &cache);
    ASSERT_NE(graph, nullptr) << gd.ToString();
    EXPECT_EQ(graph->waves().size(), 3u);  // leaf -> mid -> app

    LinkedBuild ref_build = BuildAll(*graph, config, /*verify=*/true, &cache);
    ASSERT_TRUE(ref_build.ok) << AllDiags(ref_build);
    if (WantsVerify(config)) {
      ASSERT_NE(ref_build.verify_result, nullptr);
      EXPECT_TRUE(ref_build.verify_result->ok)
          << ref_build.verify_result->ErrorText();
      EXPECT_GE(ref_build.stats.link.resolved_call_sites, 4u);
    }
    LinkedBuild fast_build = BuildAll(*graph, config, /*verify=*/true, &cache);
    ASSERT_TRUE(fast_build.ok) << AllDiags(fast_build);

    auto ref = SessionFor(std::move(ref_build), config, VmEngine::kRef);
    auto fast = SessionFor(std::move(fast_build), config, VmEngine::kFast);
    ASSERT_NE(ref, nullptr);
    ASSERT_NE(fast, nullptr);

    const auto r = ref->vm->Call("main", {});
    const auto f = fast->vm->Call("main", {});
    ASSERT_TRUE(r.ok) << r.fault_msg;
    ExpectSameResult(r, f);
    ExpectSameStats(*ref->vm, *fast->vm);

    // And the linked result equals the monolithic compile of the same
    // program (modules concatenated, imports dropped) — separate
    // compilation changes layout, not semantics.
    const std::string mono = std::string(kLeafSrc) +
                             "int cube(int x) { return x * square(x); }\n"
                             "int twice_bumped(int x) { return bump(bump(x)); }\n" +
                             [] {
                               std::string s = kAppSrc;
                               size_t p;
                               while ((p = s.find("import")) != std::string::npos) {
                                 s.erase(p, s.find(';', p) - p + 1);
                               }
                               return s;
                             }();
    DiagEngine md;
    auto mono_session = MakeSession(mono, preset, &md);
    ASSERT_NE(mono_session, nullptr) << md.ToString();
    const auto m = mono_session->vm->Call("main", {});
    ASSERT_TRUE(m.ok) << m.fault_msg;
    EXPECT_EQ(m.ret, r.ret);
  }
}

// ---- module-boundary qualifier contracts ----

TEST(ModuleContracts, PrivateToPublicArgumentIsASemaError) {
  DiagEngine d;
  BuildGraph g;
  ASSERT_TRUE(g.AddModule("sink", "int sink(int x) { return x + 1; }\n", &d));
  ASSERT_TRUE(g.AddModule(
      "app",
      "import \"sink\";\n"
      "int main() { private int s = 7; return sink(s); }\n",
      &d));
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ASSERT_TRUE(g.Finalize(config, &d));
  LinkedBuild b = BuildAll(g, config, /*verify=*/true);
  EXPECT_FALSE(b.ok);
  EXPECT_TRUE(AllDiags(b).find("private data flows") != std::string::npos ||
              AllDiags(b).find("argument") != std::string::npos)
      << AllDiags(b);
}

TEST(ModuleContracts, PublicToPrivateParameterIsAccepted) {
  DiagEngine d;
  BuildGraph g;
  ASSERT_TRUE(g.AddModule(
      "sink", "private int absorb(private int x) { return x * 2; }\n", &d));
  ASSERT_TRUE(g.AddModule(
      "app",
      "import \"sink\";\n"
      "int main() { private int r = absorb(5); r = r + 1; return 1; }\n",
      &d));
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ASSERT_TRUE(g.Finalize(config, &d)) << d.ToString();
  LinkedBuild b = BuildAll(g, config, /*verify=*/true);
  EXPECT_TRUE(b.ok) << AllDiags(b);
}

// Compiles one module source as an object Binary against `interfaces`.
std::unique_ptr<CompilerInvocation> CompileObject(
    const std::string& src, const BuildConfig& config,
    const ModuleInterfaceSet* interfaces, bool* ok) {
  auto inv = std::make_unique<CompilerInvocation>(src, config);
  inv->set_interfaces(interfaces, /*fingerprint=*/0);
  *ok = PassManager::Object(config).Run(inv.get());
  return inv;
}

// The interface-forgery ladder: the defining module exports sink(public int);
// the importer is compiled against a forged interface claiming
// sink(private int), so sema accepts passing a secret.
//   Rung 1: the linker's contract check sees taint_bits differ -> reject.
//   Rung 2: the attacker also forges the importer's BinModImport metadata to
//           match the definition; the linker is fooled, but ConfVerify on
//           the merged image sees a private value in the argument register
//           against a public callee magic -> reject.
TEST(ModuleContracts, ForgedInterfaceIsRejectedByLinkerThenConfVerify) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);

  bool ok = false;
  auto provider = CompileObject(
      "int pub_out = 0;\n"
      "int sink(int x) { pub_out = x; return x + 1; }\n",
      config, nullptr, &ok);
  ASSERT_TRUE(ok) << provider->diags().ToString();

  ModuleInterfaceSet forged;
  {
    ModuleInterface mi;
    mi.module = "provider";
    InterfaceFn f;
    f.name = "sink";
    f.ret.base = InterfaceType::Base::kInt;
    f.ret.quals = {Qual::kPublic};
    InterfaceType param;
    param.base = InterfaceType::Base::kInt;
    param.quals = {Qual::kPrivate};  // the lie: definition says public
    f.params.push_back(param);
    mi.functions.push_back(std::move(f));
    forged.Add(std::move(mi));
  }
  // The secret must be dynamically private, not just declared so: load it
  // from a private-region global, so the verifier's dataflow sees taint H in
  // the argument register at the call site.
  auto attacker = CompileObject(
      "import \"provider\";\n"
      "private int vault = 1234;\n"
      "int main() { return sink(vault); }\n",
      config, &forged, &ok);
  ASSERT_TRUE(ok) << attacker->diags().ToString();  // sema believed the forgery

  // Rung 1: the linker's metadata contract check catches the mismatch.
  {
    DiagEngine ld;
    auto linked = LinkBinaries({provider->binary.get(), attacker->binary.get()}, &ld);
    EXPECT_EQ(linked, nullptr);
    EXPECT_TRUE(ld.Contains("interface contract mismatch")) << ld.ToString();
  }

  // Rung 2: forge the metadata too. The linker now resolves the edge, but
  // link-time ConfVerify re-derives the contract from the caller's register
  // taints vs the callee's entry magic and rejects the merged image.
  {
    ASSERT_EQ(attacker->binary->mod_imports.size(), 1u);
    const int provider_sink = provider->binary->FunctionIndex("sink");
    ASSERT_GE(provider_sink, 0);
    attacker->binary->mod_imports[0].taint_bits =
        provider->binary->functions[provider_sink].taint_bits;

    DiagEngine ld;
    LinkStats ls;
    auto linked =
        LinkBinaries({provider->binary.get(), attacker->binary.get()}, &ld, &ls);
    ASSERT_NE(linked, nullptr) << ld.ToString();
    EXPECT_EQ(ls.resolved_call_sites, 1u);

    auto prog = LoadBinary(std::move(*linked), config.load, &ld);
    ASSERT_NE(prog, nullptr) << ld.ToString();
    const VerifyResult v = Verify(*prog);
    EXPECT_FALSE(v.ok);
    bool found = false;
    for (const std::string& e : v.errors) {
      found = found || e.find("argument register") != std::string::npos;
    }
    EXPECT_TRUE(found) << v.ErrorText();
  }
}

// The CFI taint encoding cannot distinguish void from a private return
// (both encode ret-taint 1), so the contract check must compare void-ness
// separately: a forged interface turning `void ping(int)` into
// `private int ping(int)` would otherwise link and hand the importer an
// uninitialized return register.
TEST(ModuleContracts, VoidVersusValueReturnForgeryFailsTheLink) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  bool ok = false;
  auto provider = CompileObject("int pings = 0;\n"
                                "void ping(int x) { pings = pings + x; }\n",
                                config, nullptr, &ok);
  ASSERT_TRUE(ok) << provider->diags().ToString();

  ModuleInterfaceSet forged;
  {
    ModuleInterface mi;
    mi.module = "provider";
    InterfaceFn f;
    f.name = "ping";
    f.ret.base = InterfaceType::Base::kInt;
    f.ret.quals = {Qual::kPrivate};  // same taint bit as void, but a value
    InterfaceType param;
    param.base = InterfaceType::Base::kInt;
    param.quals = {Qual::kPublic};
    f.params.push_back(param);
    mi.functions.push_back(std::move(f));
    forged.Add(std::move(mi));
  }
  auto importer = CompileObject(
      "import \"provider\";\n"
      "int main() { private int r = ping(3); r = r + 1; return 0; }\n",
      config, &forged, &ok);
  ASSERT_TRUE(ok) << importer->diags().ToString();

  DiagEngine ld;
  EXPECT_EQ(LinkBinaries({provider->binary.get(), importer->binary.get()}, &ld),
            nullptr);
  EXPECT_TRUE(ld.Contains("interface contract mismatch")) << ld.ToString();
}

// ---- warm-cache incrementality ----

bool CodegenCached(const LinkedBuild& b, const std::string& name) {
  for (const auto& pm : b.stats.per_module) {
    if (pm.name == name) {
      return pm.codegen_cached;
    }
  }
  ADD_FAILURE() << "no module " << name;
  return false;
}

TEST(IncrementalGraph, BodyEditRecompilesExactlyThatModule) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ArtifactCache cache;
  {
    DiagEngine d;
    auto g = MakeGraph(config, &d, &cache);
    ASSERT_NE(g, nullptr) << d.ToString();
    LinkedBuild cold = BuildAll(*g, config, /*verify=*/true, &cache);
    ASSERT_TRUE(cold.ok) << AllDiags(cold);
    EXPECT_EQ(cold.stats.codegen_ran, 3u);
  }
  // Same sources again: everything restores.
  {
    DiagEngine d;
    auto g = MakeGraph(config, &d, &cache);
    ASSERT_NE(g, nullptr);
    LinkedBuild warm = BuildAll(*g, config, /*verify=*/true, &cache);
    ASSERT_TRUE(warm.ok) << AllDiags(warm);
    EXPECT_EQ(warm.stats.codegen_ran, 0u);
  }
  // Body-only edit of leaf: new constant inside bump(). Interfaces are
  // unchanged, so mid and app restore their whole pipelines.
  {
    const std::string leaf_edited =
        "int square(int x) { return x * x; }\n"
        "private int seal(private int s, int k) { return s * 3 + k; }\n"
        "int bump(int x) { int d = 1; return x + d; }\n";
    DiagEngine d;
    auto g = MakeGraph(config, &d, &cache, leaf_edited.c_str());
    ASSERT_NE(g, nullptr) << d.ToString();
    LinkedBuild b = BuildAll(*g, config, /*verify=*/true, &cache);
    ASSERT_TRUE(b.ok) << AllDiags(b);
    EXPECT_EQ(b.stats.codegen_ran, 1u);
    EXPECT_FALSE(CodegenCached(b, "leaf"));
    EXPECT_TRUE(CodegenCached(b, "mid"));
    EXPECT_TRUE(CodegenCached(b, "app"));
  }
}

TEST(IncrementalGraph, SignatureEditDirtiesExactlyTheDependents) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ArtifactCache cache;
  {
    DiagEngine d;
    auto g = MakeGraph(config, &d, &cache);
    ASSERT_NE(g, nullptr);
    ASSERT_TRUE(BuildAll(*g, config, /*verify=*/true, &cache).ok);
  }
  // mid's exported signature changes (new exported function changes the
  // interface fingerprint): app must recompile, leaf must not.
  {
    const std::string mid_edited =
        "import \"leaf\";\n"
        "int cube(int x) { return x * square(x); }\n"
        "int twice_bumped(int x) { return bump(bump(x)); }\n"
        "int extra(int x) { return x; }\n";
    DiagEngine d;
    auto g = MakeGraph(config, &d, &cache, kLeafSrc, mid_edited.c_str());
    ASSERT_NE(g, nullptr) << d.ToString();
    LinkedBuild b = BuildAll(*g, config, /*verify=*/true, &cache);
    ASSERT_TRUE(b.ok) << AllDiags(b);
    EXPECT_TRUE(CodegenCached(b, "leaf"));
    EXPECT_FALSE(CodegenCached(b, "mid"));
    EXPECT_FALSE(CodegenCached(b, "app"));
    EXPECT_EQ(b.stats.codegen_ran, 2u);
  }
}

// ---- graph hygiene ----

TEST(GraphHygiene, UnknownImportSelfImportCycleAndDuplicates) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  {
    DiagEngine d;
    BuildGraph g;
    ASSERT_TRUE(g.AddModule("a", "import \"nosuch\";\nint main() { return 0; }\n", &d));
    EXPECT_FALSE(g.Finalize(config, &d));
    EXPECT_TRUE(d.Contains("unknown module"));
  }
  {
    DiagEngine d;
    BuildGraph g;
    ASSERT_TRUE(g.AddModule("a", "import \"a\";\nint main() { return 0; }\n", &d));
    EXPECT_FALSE(g.Finalize(config, &d));
    EXPECT_TRUE(d.Contains("imports itself"));
  }
  {
    DiagEngine d;
    BuildGraph g;
    ASSERT_TRUE(g.AddModule("a", "import \"b\";\nint fa(int x) { return x; }\n", &d));
    ASSERT_TRUE(g.AddModule("b", "import \"a\";\nint fb(int x) { return x; }\n", &d));
    EXPECT_FALSE(g.Finalize(config, &d));
    EXPECT_TRUE(d.Contains("import cycle"));
  }
  {
    DiagEngine d;
    BuildGraph g;
    ASSERT_TRUE(g.AddModule("a", "int main() { return 0; }\n", &d));
    EXPECT_FALSE(g.AddModule("a", "int f() { return 1; }\n", &d));
    EXPECT_TRUE(d.Contains("duplicate module"));
  }
}

TEST(GraphHygiene, DiamondDependencySchedulesInThreeWaves) {
  // d imports b and c; b and c both import a -> waves {a}, {b, c}, {d}.
  DiagEngine d;
  BuildGraph g;
  ASSERT_TRUE(g.AddModule("a", "int fa(int x) { return x + 1; }\n", &d));
  ASSERT_TRUE(g.AddModule("b", "import \"a\";\nint fb(int x) { return fa(x) * 2; }\n", &d));
  ASSERT_TRUE(g.AddModule("c", "import \"a\";\nint fc(int x) { return fa(x) * 3; }\n", &d));
  ASSERT_TRUE(g.AddModule(
      "d", "import \"b\";\nimport \"c\";\nint main() { return fb(1) + fc(1); }\n", &d));
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurSeg);
  ASSERT_TRUE(g.Finalize(config, &d)) << d.ToString();
  ASSERT_EQ(g.waves().size(), 3u);
  EXPECT_EQ(g.waves()[0].size(), 1u);
  EXPECT_EQ(g.waves()[1].size(), 2u);
  EXPECT_EQ(g.waves()[2].size(), 1u);

  LinkedBuild b = BuildAll(g, config, /*verify=*/true);
  ASSERT_TRUE(b.ok) << AllDiags(b);
  auto session = SessionFor(std::move(b), config, VmEngine::kFast);
  const auto r = session->vm->Call("main", {});
  ASSERT_TRUE(r.ok) << r.fault_msg;
  EXPECT_EQ(r.ret, 10u);  // fb(1)=4, fc(1)=6
}

TEST(GraphHygiene, DuplicateFunctionAcrossModulesFailsTheLink) {
  DiagEngine d;
  BuildGraph g;
  ASSERT_TRUE(g.AddModule("a", "int f(int x) { return x; }\n", &d));
  ASSERT_TRUE(g.AddModule("b", "int f(int x) { return x + 1; }\n"
                               "int main() { return f(1); }\n", &d));
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ASSERT_TRUE(g.Finalize(config, &d));
  LinkedBuild b = BuildAll(g, config, /*verify=*/false);
  EXPECT_FALSE(b.ok);
  EXPECT_TRUE(b.diags.Contains("defined in module")) << AllDiags(b);
}

// ---- linker mechanics ----

TEST(Linker, TrustedImportsDedupAndGlobalsRelocate) {
  // Both modules call conf_malloc (a trusted import) and own a private
  // global; the merged binary must hold one externals entry and both
  // globals, and the program must still run correctly on both engines.
  DiagEngine d;
  BuildGraph g;
  ASSERT_TRUE(g.AddModule("alloc1",
                          "void *pub_malloc(int n);\n"
                          "int g1 = 11;\n"
                          "int use1() { int *p = (int *) pub_malloc(8); *p = g1; return *p; }\n",
                          &d));
  ASSERT_TRUE(g.AddModule("alloc2",
                          "import \"alloc1\";\n"
                          "void *pub_malloc(int n);\n"
                          "int g2 = 31;\n"
                          "int main() { int *q = (int *) pub_malloc(8); *q = g2;\n"
                          "  return use1() + *q; }\n",
                          &d));
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ASSERT_TRUE(g.Finalize(config, &d)) << d.ToString();
  LinkedBuild b = BuildAll(g, config, /*verify=*/true);
  ASSERT_TRUE(b.ok) << AllDiags(b);
  EXPECT_EQ(b.stats.link.trusted_imports, 1u);
  EXPECT_EQ(b.prog->binary.globals.size(), 2u);
  auto session = SessionFor(std::move(b), config, VmEngine::kRef);
  const auto r = session->vm->Call("main", {});
  ASSERT_TRUE(r.ok) << r.fault_msg;
  EXPECT_EQ(r.ret, 42u);
}

TEST(Linker, MixedInstrumentationConfigsAreRejected) {
  bool ok = false;
  auto a = CompileObject("int f(int x) { return x; }\n",
                         BuildConfig::For(BuildPreset::kOurMpx), nullptr, &ok);
  ASSERT_TRUE(ok);
  auto b = CompileObject("int main() { return 0; }\n",
                         BuildConfig::For(BuildPreset::kOurSeg), nullptr, &ok);
  ASSERT_TRUE(ok);
  DiagEngine ld;
  EXPECT_EQ(LinkBinaries({a->binary.get(), b->binary.get()}, &ld), nullptr);
  EXPECT_TRUE(ld.Contains("instrumentation config")) << ld.ToString();
}

TEST(Linker, SerializedModuleObjectsSurviveARoundTripAndStillLink) {
  // Module objects (with unresolved mod_imports / mod_call_sites / func
  // refs) must round-trip the v2 serialization byte-identically.
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  bool ok = false;
  auto provider =
      CompileObject("int half(int x) { return x / 2; }\n", config, nullptr, &ok);
  ASSERT_TRUE(ok);
  ModuleInterfaceSet set;
  {
    DiagEngine pd;
    auto ast = Parse(provider->source(), &pd);
    set.Add(ExtractModuleInterface(*ast, "provider", false));
  }
  auto consumer = CompileObject(
      "import \"provider\";\nint main() { return half(84); }\n", config, &set, &ok);
  ASSERT_TRUE(ok) << consumer->diags().ToString();
  EXPECT_EQ(consumer->binary->mod_imports.size(), 1u);
  EXPECT_EQ(consumer->binary->mod_call_sites.size(), 1u);

  const auto blob = SerializeBinary(*consumer->binary);
  Binary back;
  ASSERT_TRUE(DeserializeBinary(blob, &back));
  EXPECT_EQ(SerializeBinary(back), blob);

  DiagEngine ld;
  auto linked = LinkBinaries({provider->binary.get(), &back}, &ld);
  ASSERT_NE(linked, nullptr) << ld.ToString();
  auto prog = LoadBinary(std::move(*linked), config.load, &ld);
  ASSERT_NE(prog, nullptr) << ld.ToString();
  EXPECT_TRUE(Verify(*prog).ok);
}

TEST(Loader, RefusesUnlinkedModuleObjects) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ModuleInterfaceSet set;
  {
    ModuleInterface mi;
    mi.module = "m";
    InterfaceFn f;
    f.name = "ext";
    f.ret.base = InterfaceType::Base::kInt;
    f.ret.quals = {Qual::kPublic};
    mi.functions.push_back(std::move(f));
    set.Add(std::move(mi));
  }
  bool ok = false;
  auto obj = CompileObject("import \"m\";\nint main() { return ext(); }\n",
                           config, &set, &ok);
  ASSERT_TRUE(ok) << obj->diags().ToString();
  DiagEngine ld;
  EXPECT_EQ(LoadBinary(std::move(*obj->binary), config.load, &ld), nullptr);
  EXPECT_TRUE(ld.Contains("unresolved module imports")) << ld.ToString();
}

// ---- satellite: job-count clamping ----

TEST(Jobs, NormalizeJobCountClampsZeroAndNegative) {
  EXPECT_EQ(NormalizeJobCount(4), 4u);
  std::string warn;
  const unsigned hw = NormalizeJobCount(0, &warn);
  EXPECT_GE(hw, 1u);
  EXPECT_FALSE(warn.empty());
  warn.clear();
  EXPECT_EQ(NormalizeJobCount(-3, &warn), hw);
  EXPECT_TRUE(warn.find("clamped") != std::string::npos);
  // A positive request passes through untouched, no warning.
  warn.clear();
  EXPECT_EQ(NormalizeJobCount(1, &warn), 1u);
  EXPECT_TRUE(warn.empty());
}

// ---- satellite: import syntax / sema edge cases ----

TEST(ImportSyntax, ErrorsAreDiagnosed) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  {
    // Import without an interface set: sema names the missing module.
    DiagEngine d;
    CompilerInvocation inv("import \"ghost\";\nint main() { return 0; }\n", config);
    EXPECT_FALSE(PassManager::Object(config).Run(&inv));
    EXPECT_TRUE(inv.diags().Contains("unknown module 'ghost'"));
  }
  {
    // Defining a function that is also imported is a conflict.
    ModuleInterfaceSet set;
    ModuleInterface mi;
    mi.module = "m";
    InterfaceFn f;
    f.name = "dup";
    f.ret.base = InterfaceType::Base::kInt;
    f.ret.quals = {Qual::kPublic};
    mi.functions.push_back(std::move(f));
    set.Add(std::move(mi));
    DiagEngine d;
    CompilerInvocation inv(
        "import \"m\";\nint dup() { return 1; }\nint main() { return dup(); }\n",
        config);
    inv.set_interfaces(&set, 0);
    EXPECT_FALSE(PassManager::Object(config).Run(&inv));
    EXPECT_TRUE(inv.diags().Contains("conflicts with a function imported"));
  }
  {
    // Taking the address of an imported function is rejected (cross-module
    // function pointers would bypass the linker's contract check).
    ModuleInterfaceSet set;
    ModuleInterface mi;
    mi.module = "m";
    InterfaceFn f;
    f.name = "ext";
    f.ret.base = InterfaceType::Base::kInt;
    f.ret.quals = {Qual::kPublic};
    mi.functions.push_back(std::move(f));
    set.Add(std::move(mi));
    DiagEngine d;
    CompilerInvocation inv(
        "import \"m\";\nint main() { int (*p)() = ext; return 0; }\n", config);
    inv.set_interfaces(&set, 0);
    EXPECT_FALSE(PassManager::Object(config).Run(&inv));
    EXPECT_TRUE(inv.diags().Contains("cannot take address of module-imported"))
        << inv.diags().ToString();
  }
}

TEST(Interfaces, FingerprintTracksSignaturesNotBodies) {
  DiagEngine d;
  auto a1 = Parse("int f(private char *p, int n) { return n; }\n", &d);
  auto a2 = Parse("int f(private char *p, int n) { return n + 1; }\n", &d);
  auto a3 = Parse("int f(char *p, int n) { return n; }\n", &d);
  const auto i1 = ExtractModuleInterface(*a1, "m", false);
  const auto i2 = ExtractModuleInterface(*a2, "m", false);
  const auto i3 = ExtractModuleInterface(*a3, "m", false);
  EXPECT_EQ(i1.Fingerprint(), i2.Fingerprint());   // body change: same
  EXPECT_NE(i1.Fingerprint(), i3.Fingerprint());   // qualifier change: differs
  // All-private default flips unannotated levels.
  const auto i4 = ExtractModuleInterface(*a3, "m", true);
  EXPECT_NE(i3.Fingerprint(), i4.Fingerprint());
  // Struct-param functions are not exported.
  auto a5 = Parse("struct S { int a; };\nint g(struct S *s) { return 0; }\n"
                  "int h(int x) { return x; }\n", &d);
  const auto i5 = ExtractModuleInterface(*a5, "m", false);
  EXPECT_EQ(i5.Find("g"), nullptr);
  EXPECT_NE(i5.Find("h"), nullptr);
}

}  // namespace
}  // namespace confllvm
