// Resilience hardening under deterministic fault injection
// (src/support/fault_injection.h; ARCHITECTURE.md "Failure model and
// degradation ladder"):
//
//   * injector semantics — spec parsing/rejection, nth-hit and probability
//     triggers, per-site stream determinism, and the hit-count report;
//   * the headline chaos gate — a cold→warm --preset=all sweep under disk
//     I/O fault injection never crashes, produces byte-identical binaries
//     vs the fault-free run, and the cache *reports* its degradation;
//   * disk-tier degradation ladder — retry-then-fail accounting, the
//     circuit breaker opening after consecutive failures, short-circuiting
//     while open, and self-healing through periodic probes; injected
//     ENOSPC on the entry write and on the publish rename degrades to
//     compute-without-store;
//   * pipeline failure isolation — an injected stage crash fails exactly
//     its own job with a diagnostic; a stalled stage trips the per-job
//     deadline; the build scheduler skips only the transitive dependents
//     of a failed module;
//   * the VM wall-clock watchdog faults with `deadline` identically across
//     all three engines, for Call and RunParallel.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/driver/artifact_cache.h"
#include "src/driver/build_graph.h"
#include "src/driver/confcc.h"
#include "src/driver/disk_cache.h"
#include "src/driver/pipeline.h"
#include "src/isa/binary.h"
#include "src/support/fault_injection.h"
#include "src/vm/vm.h"

namespace fs = std::filesystem;

namespace confllvm {
namespace {

// Arms the global injector for one scope; disarms (and zeroes counters) on
// exit even when an assertion fails, so tests cannot leak faults into each
// other.
struct InjectorScope {
  explicit InjectorScope(const std::string& spec) {
    std::string err;
    EXPECT_TRUE(FaultInjector::Instance().Configure(spec, &err)) << err;
  }
  ~InjectorScope() { FaultInjector::Instance().Reset(); }
};

struct TempCacheDir {
  TempCacheDir() {
    static std::atomic<int> counter{0};
    path = (fs::temp_directory_path() /
            ("confllvm_fault_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::unique_ptr<ArtifactCache> MakeDiskCache(const std::string& dir) {
  auto cache = std::make_unique<ArtifactCache>();
  EXPECT_TRUE(cache->AttachDiskTier({dir, 0}));
  return cache;
}

const char* kSource =
    "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) "
    "{ s = s + i; } return s; }\n";

StageArtifact MakeCodegenArtifact() {
  DiagEngine diags;
  auto cp = Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx), &diags);
  EXPECT_NE(cp, nullptr) << diags.ToString();
  StageArtifact a;
  a.stage = StageId::kCodegen;
  a.binary = std::make_shared<const Binary>(cp->prog->binary);
  a.source = std::make_shared<const std::string>(kSource);
  a.bytes = ApproxBytes(*a.binary);
  return a;
}

// ---- Injector semantics ----

TEST(FaultInjector, RejectsMalformedSpecsAndStaysUnarmed) {
  FaultInjector& fi = FaultInjector::Instance();
  std::string err;
  for (const char* bad :
       {"disk.read.open", "disk.read.open=", "disk.read.open=p",
        "disk.read.open=p1.5", "disk.read.open=p-0.1", "disk.read.open=pabc",
        "disk.read.open=n0", "disk.read.open=nabc", "seed=", "seed=xyz",
        "=p0.5"}) {
    SCOPED_TRACE(bad);
    err.clear();
    EXPECT_FALSE(fi.Configure(bad, &err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(fi.enabled());
  }
  // Empty clauses (stray commas) are tolerated and arm nothing.
  ASSERT_TRUE(fi.Configure(",,", &err)) << err;
  EXPECT_FALSE(fi.enabled());
  // A good spec arms; the empty spec disarms.
  ASSERT_TRUE(fi.Configure("seed=3,disk.*=p0.5,pipeline.codegen=n2", &err))
      << err;
  EXPECT_TRUE(fi.enabled());
  ASSERT_TRUE(fi.Configure("", &err));
  EXPECT_FALSE(fi.enabled());
}

TEST(FaultInjector, NthHitFiresExactlyOnceAndGlobArmsByPrefix) {
  InjectorScope inject("some.site=n3,glob.prefix.*=n1");
  FaultInjector& fi = FaultInjector::Instance();
  std::vector<bool> fires;
  for (int i = 0; i < 6; ++i) {
    fires.push_back(fi.ShouldFail("some.site"));
  }
  EXPECT_EQ(fires, std::vector<bool>({false, false, true, false, false, false}));
  EXPECT_TRUE(fi.ShouldFail("glob.prefix.a"));
  EXPECT_FALSE(fi.ShouldFail("glob.prefix.a"));  // n1 already fired for .a
  EXPECT_TRUE(fi.ShouldFail("glob.prefix.b"));   // .b has its own hit count
  EXPECT_FALSE(fi.ShouldFail("unrelated.site"));

  const std::string json = fi.ReportJson();
  EXPECT_NE(json.find("\"some.site\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"glob.prefix.a\""), std::string::npos) << json;
}

TEST(FaultInjector, ProbabilityStreamsAreDeterministicPerSeedAndSite) {
  const auto draw = [](const std::string& spec, const std::string& site,
                       int n) {
    InjectorScope inject(spec);
    std::vector<bool> fires;
    for (int i = 0; i < n; ++i) {
      fires.push_back(FaultInjector::Instance().ShouldFail(site));
    }
    return fires;
  };
  const auto a = draw("seed=42,s.*=p0.5", "s.one", 64);
  EXPECT_EQ(a, draw("seed=42,s.*=p0.5", "s.one", 64));
  EXPECT_NE(a, draw("seed=43,s.*=p0.5", "s.one", 64));
  EXPECT_NE(a, draw("seed=42,s.*=p0.5", "s.two", 64));
  // Interleaving hits of another site does not perturb s.one's stream.
  {
    InjectorScope inject("seed=42,s.*=p0.5");
    std::vector<bool> fires;
    for (int i = 0; i < 64; ++i) {
      FaultInjector::Instance().ShouldFail("s.two");
      fires.push_back(FaultInjector::Instance().ShouldFail("s.one"));
      FaultInjector::Instance().ShouldFail("s.three");
    }
    EXPECT_EQ(fires, a);
  }
  // p0.5 over 64 draws fires sometimes but not always.
  int fired = 0;
  for (const bool f : a) {
    fired += f ? 1 : 0;
  }
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 64);
}

// ---- The headline chaos gate ----

TEST(ChaosSweep, DiskFaultsNeverChangeOutputBytesAndAreReported) {
  // Fault-free reference: one blob per preset.
  auto baseline = CompileBatch(PresetSweepJobs(kSource), 2, nullptr);
  std::vector<std::vector<uint8_t>> ref;
  for (auto& o : baseline) {
    ASSERT_TRUE(o.ok) << o.label << ": " << o.invocation->diags().ToString();
    ref.push_back(SerializeBinary(o.program->prog->binary));
  }

  TempCacheDir dir;
  InjectorScope inject("seed=7,disk.*=p0.5");
  uint64_t total_degradation = 0;
  for (const char* round : {"cold", "warm"}) {
    SCOPED_TRACE(round);
    auto cache = MakeDiskCache(dir.path);
    auto out = CompileBatch(PresetSweepJobs(kSource), 2, cache.get());
    for (size_t i = 0; i < out.size(); ++i) {
      SCOPED_TRACE(out[i].label);
      ASSERT_TRUE(out[i].ok) << out[i].invocation->diags().ToString();
      // The tentpole property: injected disk faults may cost performance
      // (retries, recomputes), never correctness — every output byte is
      // identical to the fault-free run.
      EXPECT_EQ(SerializeBinary(out[i].program->prog->binary), ref[i]);
    }
    const CacheStats cs = cache->stats();
    total_degradation += cs.disk_retries + cs.disk_io_failures +
                         cs.disk_store_failures +
                         cs.disk_breaker_short_circuits;
  }
  // Degradation is visible, never silent: at p=0.5 the sweep must have
  // recorded retries/failures somewhere.
  EXPECT_GT(total_degradation, 0u);

  // The injector's own report saw the disk sites fire.
  uint64_t fired = 0;
  for (const auto& sc : FaultInjector::Instance().Report()) {
    if (sc.site.rfind("disk.", 0) == 0) {
      fired += sc.fired;
    }
  }
  EXPECT_GT(fired, 0u);
}

// ---- Disk-tier degradation ladder ----

TEST(DiskResilience, RetriesAreCountedAndTransientFaultsStillSucceed) {
  TempCacheDir dir;
  DiskCacheTier tier({dir.path, 0});
  ASSERT_TRUE(tier.ok());
  const StageArtifact artifact = MakeCodegenArtifact();
  // n1: exactly the first write attempt fails; the retry must succeed and
  // the store must land.
  InjectorScope inject("disk.write.open=n1");
  EXPECT_TRUE(tier.Store("codegen:0xretry", artifact));
  const auto rs = tier.resilience();
  EXPECT_GE(rs.retries, 1u);
  EXPECT_EQ(rs.io_failures, 0u);
  EXPECT_EQ(rs.store_failures, 0u);
  EXPECT_FALSE(rs.breaker_open);
  EXPECT_NE(tier.Load("codegen:0xretry").artifact, nullptr);
}

TEST(DiskResilience, BreakerOpensAfterConsecutiveFailuresAndSelfHeals) {
  TempCacheDir dir;
  DiskCacheTier tier({dir.path, 0});
  ASSERT_TRUE(tier.ok());
  const StageArtifact artifact = MakeCodegenArtifact();
  {
    InjectorScope inject("disk.write.*=p1.0");
    for (uint32_t i = 0; i < kDiskCacheBreakerThreshold; ++i) {
      EXPECT_FALSE(
          tier.Store("codegen:0xchaos" + std::to_string(i), artifact));
    }
    auto rs = tier.resilience();
    EXPECT_TRUE(rs.breaker_open);
    EXPECT_GE(rs.breaker_opens, 1u);
    EXPECT_GE(rs.io_failures, kDiskCacheBreakerThreshold);
    EXPECT_GE(rs.store_failures, kDiskCacheBreakerThreshold);
    EXPECT_GT(rs.retries, 0u);
    // While open the tier answers without touching the disk: a store fails
    // fast, a load is a plain miss, both counted as short-circuits.
    EXPECT_FALSE(tier.Store("codegen:0xopen", artifact));
    EXPECT_EQ(tier.Load("codegen:0xopen").artifact, nullptr);
    EXPECT_GT(tier.resilience().breaker_short_circuits, 0u);
  }
  // Faults cleared: within one probe interval an operation is admitted as a
  // self-healing probe, succeeds, and closes the breaker.
  bool healed = false;
  for (uint64_t i = 0; i <= kDiskCacheBreakerProbeInterval && !healed; ++i) {
    tier.Store("codegen:0xheal", artifact);
    healed = !tier.resilience().breaker_open;
  }
  EXPECT_TRUE(healed);
  EXPECT_GT(tier.resilience().breaker_probes, 0u);
  EXPECT_TRUE(tier.Store("codegen:0xafter", artifact));
  EXPECT_NE(tier.Load("codegen:0xafter").artifact, nullptr);
}

TEST(DiskResilience, EnospcOnWriteOrRenameDegradesToComputeWithoutStore) {
  DiagEngine ref_diags;
  auto ref = Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx),
                     &ref_diags);
  ASSERT_NE(ref, nullptr);
  const std::vector<uint8_t> ref_blob = SerializeBinary(ref->prog->binary);

  for (const char* spec : {"disk.write.data=p1.0", "disk.write.rename=p1.0"}) {
    SCOPED_TRACE(spec);
    TempCacheDir dir;
    {
      // Every store attempt loses its payload (injected ENOSPC): the
      // compile must still succeed, with the lost store counted.
      InjectorScope inject(spec);
      auto cache = MakeDiskCache(dir.path);
      DiagEngine diags;
      auto cp = Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx),
                        &diags, nullptr, cache.get());
      ASSERT_NE(cp, nullptr) << diags.ToString();
      EXPECT_EQ(SerializeBinary(cp->prog->binary), ref_blob);
      const CacheStats cs = cache->stats();
      EXPECT_EQ(cs.disk_stores, 0u);
      EXPECT_GT(cs.disk_store_failures, 0u);
      EXPECT_GT(cs.disk_retries, 0u);
      // No partial entry may be left visible — the directory holds no .art
      // files at all.
      for (const auto& de : fs::directory_iterator(dir.path)) {
        EXPECT_NE(de.path().extension(), ".art") << de.path();
      }
    }
    // The disk returns to health: a warm run recomputes correctly, stores,
    // and the run after that hits.
    {
      auto cache = MakeDiskCache(dir.path);
      DiagEngine diags;
      auto cp = Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx),
                        &diags, nullptr, cache.get());
      ASSERT_NE(cp, nullptr);
      EXPECT_EQ(SerializeBinary(cp->prog->binary), ref_blob);
      EXPECT_GT(cache->stats().disk_stores, 0u);
    }
    auto again = MakeDiskCache(dir.path);
    DiagEngine diags;
    ASSERT_NE(Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx), &diags,
                      nullptr, again.get()),
              nullptr);
    EXPECT_EQ(again->stats().disk_hits, 1u);
  }
}

TEST(DiskResilience, ResilienceCountersSurfaceInStatsRowAndJson) {
  TempCacheDir dir;
  InjectorScope inject("disk.write.data=p1.0");
  auto cache = MakeDiskCache(dir.path);
  DiagEngine diags;
  ASSERT_NE(Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx), &diags,
                    nullptr, cache.get()),
            nullptr);
  const CacheStats cs = cache->stats();
  const std::string row = cs.ToRow();
  EXPECT_NE(row.find("disk-resilience:"), std::string::npos) << row;
  const std::string json = cs.ToJson();
  for (const char* key :
       {"\"disk_retries\"", "\"disk_io_failures\"", "\"disk_store_failures\"",
        "\"disk_breaker_opens\"", "\"disk_breaker_short_circuits\"",
        "\"disk_breaker_probes\"", "\"disk_breaker_open\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

// ---- Pipeline failure isolation + deadlines ----

TEST(PipelineIsolation, InjectedStageCrashFailsExactlyItsOwnJob) {
  InjectorScope inject("pipeline.codegen=n1");
  auto out = CompileBatch(PresetSweepJobs(kSource), /*num_workers=*/1, nullptr);
  int failed = 0;
  for (auto& o : out) {
    if (o.ok) {
      continue;
    }
    ++failed;
    EXPECT_TRUE(
        o.invocation->diags().Contains("internal error in stage codegen"))
        << o.invocation->diags().ToString();
    EXPECT_TRUE(o.invocation->diags().Contains("injected fault"));
  }
  EXPECT_EQ(failed, 1);
  EXPECT_EQ(out.size(), 8u);
}

TEST(PipelineDeadline, StalledStageTripsThePerJobDeadline) {
  InjectorScope inject("pipeline.stall.*=p1.0");  // 20 ms stall before each stage's compute
  BatchJob job;
  job.label = "deadline";
  job.source = kSource;
  job.config = BuildConfig::For(BuildPreset::kOurMpx);
  job.deadline_ms = 5;
  auto out = CompileBatch({job}, 1, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].ok);
  EXPECT_TRUE(out[0].invocation->diags().Contains("compile deadline exceeded"))
      << out[0].invocation->diags().ToString();
}

TEST(PipelineDeadline, GenerousDeadlineDoesNotPerturbTheCompile) {
  BatchJob job;
  job.label = "ok";
  job.source = kSource;
  job.config = BuildConfig::For(BuildPreset::kOurMpx);
  job.deadline_ms = 60000;
  auto out = CompileBatch({job}, 1, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(out[0].ok) << out[0].invocation->diags().ToString();
}

// ---- Scheduler failure isolation ----

TEST(SchedulerIsolation, FailedModuleSkipsOnlyItsTransitiveDependents) {
  DiagEngine gdiags;
  BuildGraph graph;
  // leaf parses but fails sema; mid -> leaf, app -> mid; solo independent.
  ASSERT_TRUE(graph.AddModule(
      "leaf", "int leaf_f(int x) { return undefined_sym; }\n", &gdiags));
  ASSERT_TRUE(graph.AddModule(
      "mid", "import \"leaf\";\nint mid_f(int x) { return leaf_f(x) + 1; }\n",
      &gdiags));
  ASSERT_TRUE(graph.AddModule(
      "app", "import \"mid\";\nint main() { return mid_f(1); }\n", &gdiags));
  ASSERT_TRUE(graph.AddModule(
      "solo", "int solo_f(int x) { return x * 2; }\n", &gdiags));
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  ASSERT_TRUE(graph.Finalize(config, &gdiags)) << gdiags.ToString();

  BuildScheduler sched(&graph, config);
  LinkedBuild build = sched.Run();
  EXPECT_FALSE(build.ok);

  const auto outcome = [&](const std::string& name) -> const ModuleOutcome& {
    for (const ModuleOutcome& mo : build.modules) {
      if (mo.name == name) {
        return mo;
      }
    }
    ADD_FAILURE() << "no outcome for " << name;
    return build.modules[0];
  };
  // The broken module failed its own entry...
  EXPECT_FALSE(outcome("leaf").ok);
  EXPECT_FALSE(outcome("leaf").skipped);
  // ...its transitive dependents were skipped without compiling...
  EXPECT_TRUE(outcome("mid").skipped);
  EXPECT_EQ(outcome("mid").invocation, nullptr);
  EXPECT_TRUE(outcome("app").skipped);
  // ...and the independent module still compiled (warming the cache for
  // the fixed rebuild).
  EXPECT_TRUE(outcome("solo").ok);
  EXPECT_FALSE(outcome("solo").skipped);

  // The aggregated diagnostics name both the failure and every skip.
  EXPECT_TRUE(build.diags.Contains("module 'leaf' failed to compile"))
      << build.diags.ToString();
  EXPECT_TRUE(
      build.diags.Contains("module 'mid' skipped: dependency 'leaf' failed"));
  EXPECT_TRUE(
      build.diags.Contains("module 'app' skipped: dependency 'mid' failed"));

  // The per-module JSON rows carry the skip flag.
  const std::string json = build.stats.ToJson();
  EXPECT_NE(json.find("\"name\": \"mid\", \"wave\": 1, \"ok\": false, "
                      "\"skipped\": true"),
            std::string::npos)
      << json;
}

// ---- VM wall-clock watchdog ----

const char* kSpinSource =
    "int main() { int s = 0; for (int i = 0; i < 2000000000; i = i + 1) "
    "{ s = s + i; } return s; }\n";

TEST(VmDeadline, WatchdogFaultsWithDeadlineOnEveryEngine) {
  for (const VmEngine e :
       {VmEngine::kRef, VmEngine::kFast, VmEngine::kTrace}) {
    SCOPED_TRACE(EngineName(e));
    DiagEngine diags;
    auto cp =
        Compile(kSpinSource, BuildConfig::For(BuildPreset::kOurMpx), &diags);
    ASSERT_NE(cp, nullptr) << diags.ToString();
    VmOptions opts;
    opts.engine = e;
    opts.deadline_ms = 25;
    auto s = MakeSessionFor(std::move(cp), opts);
    const auto r = s->vm->Call("main", {});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, VmFault::kDeadline);
    EXPECT_STREQ(FaultName(r.fault), "deadline");
    EXPECT_EQ(r.fault_msg, "wall-clock deadline exceeded");
    EXPECT_GT(r.instrs, 0u);  // it ran, then was stopped
  }
}

TEST(VmDeadline, RunParallelFaultsEveryRunnableThread) {
  DiagEngine diags;
  auto cp =
      Compile(kSpinSource, BuildConfig::For(BuildPreset::kOurMpx), &diags);
  ASSERT_NE(cp, nullptr) << diags.ToString();
  VmOptions opts;
  opts.deadline_ms = 25;
  auto s = MakeSessionFor(std::move(cp), opts);
  const auto pr = s->vm->RunParallel({{"main", {}}, {"main", {}}});
  EXPECT_FALSE(pr.ok);
  ASSERT_EQ(pr.per_thread.size(), 2u);
  for (const auto& r : pr.per_thread) {
    EXPECT_EQ(r.fault, VmFault::kDeadline);
  }
}

TEST(VmDeadline, ZeroDeadlineMeansNoWatchdogAndIdenticalRuns) {
  // deadline_ms=0 (the default) must not change observable behaviour; a
  // short program under a generous deadline must also be bit-identical to
  // the undeadlined run.
  DiagEngine diags;
  auto a = Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx), &diags);
  auto b = Compile(kSource, BuildConfig::For(BuildPreset::kOurMpx), &diags);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  VmOptions with_deadline;
  with_deadline.deadline_ms = 60000;
  auto sa = MakeSessionFor(std::move(a), VmOptions{});
  auto sb = MakeSessionFor(std::move(b), with_deadline);
  const auto ra = sa->vm->Call("main", {});
  const auto rb = sb->vm->Call("main", {});
  EXPECT_TRUE(ra.ok) << ra.fault_msg;
  EXPECT_TRUE(rb.ok) << rb.fault_msg;
  EXPECT_EQ(ra.ret, rb.ret);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.instrs, rb.instrs);
}

}  // namespace
}  // namespace confllvm
