// Unit tests for the lower-level modules: lexer, parser, sema/qualifier
// inference, IR optimizations, liveness, ISA encode/decode (property),
// loader magic selection, allocator, VM memory/segmentation semantics.
#include <gtest/gtest.h>

#include "src/analysis/liveness.h"
#include "src/driver/confcc.h"
#include "src/ir/irgen.h"
#include "src/isa/isa.h"
#include "src/isa/layout.h"
#include "src/lang/lexer.h"
#include "src/lang/parser.h"
#include "src/opt/passes.h"
#include "src/runtime/allocator.h"
#include "src/sema/qual_solver.h"
#include "src/support/rng.h"

namespace confllvm {
namespace {

// ---- lexer ----

TEST(Lexer, TokenizesOperatorsAndLiterals) {
  DiagEngine d;
  auto toks = Lex("x == 0x1f && y->z != 'a' << \"hi\\n\"", &d);
  ASSERT_FALSE(d.HasErrors());
  std::vector<Tok> kinds;
  for (const auto& t : toks) {
    kinds.push_back(t.kind);
  }
  EXPECT_EQ(kinds[0], Tok::kIdent);
  EXPECT_EQ(kinds[1], Tok::kEq);
  EXPECT_EQ(toks[2].int_value, 0x1f);
  EXPECT_EQ(kinds[3], Tok::kAndAnd);
  EXPECT_EQ(kinds[5], Tok::kArrow);
  EXPECT_EQ(toks[8].int_value, 'a');
  EXPECT_EQ(kinds[9], Tok::kShl);
  EXPECT_EQ(toks[10].string_value, "hi\n");
}

TEST(Lexer, CommentsAndLocations) {
  DiagEngine d;
  auto toks = Lex("a // line\n/* block\n*/ b", &d);
  ASSERT_FALSE(d.HasErrors());
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[1].loc.line, 3u);
}

TEST(Lexer, ReportsUnterminatedString) {
  DiagEngine d;
  Lex("\"oops", &d);
  EXPECT_TRUE(d.Contains("unterminated string"));
}

// ---- parser ----

TEST(Parser, PrecedenceAndAssociativity) {
  DiagEngine d;
  auto prog = Parse("int f() { return 1 + 2 * 3 - 4 / 2; }", &d);
  ASSERT_FALSE(d.HasErrors());
  const Stmt* ret = prog->functions[0].body->stmts[0].get();
  EXPECT_EQ(ExprToString(*ret->expr), "((1+(2*3))-(4/2))");
}

TEST(Parser, DeclaratorsWithQualifiers) {
  DiagEngine d;
  auto prog = Parse("private int * private pp; private char buf[4][8];", &d);
  ASSERT_FALSE(d.HasErrors());
  EXPECT_EQ(TypeSyntaxToString(*prog->globals[0].type), "private int* private");
  EXPECT_EQ(TypeSyntaxToString(*prog->globals[1].type), "private char[4][8]");
}

TEST(Parser, FunctionPointerDeclarator) {
  DiagEngine d;
  auto prog = Parse("int apply(int (*f)(int, char*), int v) { return f(v, NULL); }", &d);
  ASSERT_FALSE(d.HasErrors()) << d.ToString();
  EXPECT_EQ(prog->functions[0].params[0].type->base, TypeSyntax::Base::kFnPtr);
}

TEST(Parser, RejectsGarbage) {
  DiagEngine d;
  Parse("int f() { return + ; }", &d);
  EXPECT_TRUE(d.HasErrors());
}

// ---- sema / qualifier inference ----

std::unique_ptr<TypedProgram> Sema(const std::string& src, DiagEngine* d,
                                   SemaOptions opts = {}) {
  return RunSema(Parse(src, d), opts, d);
}

TEST(Sema, InfersPrivateLocalsFromFlows) {
  // `carrier` has no annotation; the assignment from `secret` raises its
  // inferred qualifier to private, which sink() accepts — inference, not
  // annotation, carries the taint (paper §5.1).
  DiagEngine d;
  auto tp = Sema(R"(
    int sink(private int x) { return 0; }
    int main() {
      private int secret = 3;
      int carrier = 0;
      carrier = secret + 1;
      return sink(carrier);
    })", &d);
  EXPECT_NE(tp, nullptr) << d.ToString();
  // And the same carrier must now be rejected at a public sink.
  DiagEngine d2;
  auto tp2 = Sema(R"(
    int out(int x) { return x; }
    int main() {
      private int secret = 3;
      int carrier = 0;
      carrier = secret + 1;
      return out(carrier);
    })", &d2);
  EXPECT_EQ(tp2, nullptr);
  EXPECT_TRUE(d2.Contains("private data flows to public"));
}

TEST(Sema, RejectsPrivateToPublicParam) {
  DiagEngine d;
  auto tp = Sema(R"(
    int out(int x) { return x; }
    int main() {
      private int s = 1;
      return out(s);
    })", &d);
  EXPECT_EQ(tp, nullptr);
  EXPECT_TRUE(d.Contains("private data flows to public"));
}

TEST(Sema, StructFieldInheritsOutermostQualifier) {
  // Paper §5.1: private st x => x.p is a private pointer to private int.
  DiagEngine d;
  auto tp = Sema(R"(
    struct st { private int *p; };
    int peek(struct st *s) { return 0; }
    int main() {
      private struct st x;
      struct st y;
      x.p = NULL;
      y.p = NULL;
      return 0;
    })", &d);
  ASSERT_NE(tp, nullptr) << d.ToString();
}

TEST(Sema, RejectsFieldWithOutermostAnnotation) {
  DiagEngine d;
  auto tp = Sema("struct bad { private int x; }; int main() { return 0; }", &d);
  EXPECT_EQ(tp, nullptr);
  EXPECT_TRUE(d.Contains("outermost qualifier is inherited"));
}

TEST(Sema, CastCannotDeclassifyValues) {
  DiagEngine d;
  auto tp = Sema(R"(
    int main() {
      private int s = 7;
      int leaked = (int)s;
      return leaked;
    })", &d);
  EXPECT_EQ(tp, nullptr);
  EXPECT_TRUE(d.Contains("cast cannot declassify"));
}

TEST(Sema, PointerCastMayRelabelPointee) {
  // The Minizip pattern: statically fine, dynamically checked.
  DiagEngine d;
  auto tp = Sema(R"(
    int use(char *p) { return (int)p[0]; }
    int main() {
      private char s[8];
      char *lie = (char*)(private char*)s;
      return use(lie);
    })", &d);
  EXPECT_NE(tp, nullptr) << d.ToString();
}

TEST(Sema, WarnModeOnlyWarnsOnPrivateBranch) {
  DiagEngine d;
  SemaOptions opts;
  opts.implicit_flows = ImplicitFlowMode::kWarn;
  auto tp = Sema("int main() { private int x = 1; if (x) { return 1; } return 0; }",
                 &d, opts);
  EXPECT_NE(tp, nullptr);
  EXPECT_GT(d.num_warnings(), 0u);
}

TEST(Sema, AllPrivateModeAllowsPrivateBranches) {
  DiagEngine d;
  SemaOptions opts;
  opts.all_private = true;
  auto tp = Sema("int main() { private int x = 1; if (x) { return 1; } return 0; }",
                 &d, opts);
  EXPECT_NE(tp, nullptr) << d.ToString();
  EXPECT_EQ(d.num_warnings(), 0u);
}

TEST(Sema, RejectsTooManyParams) {
  DiagEngine d;
  auto tp = Sema("int f(int a, int b, int c, int d, int e) { return 0; }", &d);
  EXPECT_EQ(tp, nullptr);
  EXPECT_TRUE(d.Contains("at most 4"));
}

TEST(Sema, RejectsFloatParams) {
  DiagEngine d;
  auto tp = Sema("int f(float x) { return 0; }", &d);
  EXPECT_EQ(tp, nullptr);
  EXPECT_TRUE(d.Contains("float parameters"));
}

TEST(QualSolver, LeastSolutionAndFailure) {
  QualSolver s;
  const QualTerm a = s.NewVar();
  const QualTerm b = s.NewVar();
  s.AddFlow(QualTerm::Const(Qual::kPrivate), a, SourceLoc{}, "x");
  s.AddFlow(a, b, SourceLoc{}, "y");
  DiagEngine d;
  ASSERT_TRUE(s.Solve(&d));
  EXPECT_EQ(s.Resolve(a), Qual::kPrivate);
  EXPECT_EQ(s.Resolve(b), Qual::kPrivate);

  QualSolver s2;
  const QualTerm c = s2.NewVar();
  s2.AddFlow(QualTerm::Const(Qual::kPrivate), c, SourceLoc{}, "in");
  s2.AddFlow(c, QualTerm::Const(Qual::kPublic), SourceLoc{}, "sink");
  DiagEngine d2;
  EXPECT_FALSE(s2.Solve(&d2));
  EXPECT_TRUE(d2.Contains("sink"));
}

// ---- IR optimizations ----

TEST(Opt, ConstantFoldingFoldsBranches) {
  DiagEngine d;
  auto tp = Sema("int main() { int x = 2 + 3; if (x == 5) { return 9; } return 1; }", &d);
  ASSERT_NE(tp, nullptr);
  auto ir = GenerateIr(*tp, &d);
  ASSERT_NE(ir, nullptr);
  OptimizeModule(ir.get(), OptLevel::kFull);
  // After folding + simplification main is nearly straight-line.
  const IrFunction* f = ir->FindFunction("main");
  ASSERT_NE(f, nullptr);
  size_t branches = 0;
  for (const auto& bb : f->blocks) {
    for (const auto& in : bb.instrs) {
      branches += in.op == IrOp::kBr ? 1 : 0;
    }
  }
  EXPECT_EQ(branches, 0u);
}

TEST(Opt, DeadCodeEliminationDropsUnusedPureDefs) {
  DiagEngine d;
  auto tp = Sema("int main() { int unused = 1 + 2; return 7; }", &d);
  ASSERT_NE(tp, nullptr);
  auto ir = GenerateIr(*tp, &d);
  OptimizeModule(ir.get(), OptLevel::kFull);
  const IrFunction* f = ir->FindFunction("main");
  size_t instrs = 0;
  for (const auto& bb : f->blocks) {
    instrs += bb.instrs.size();
  }
  EXPECT_LE(instrs, 3u);  // const, ret (+ a possible mov)
}

// ---- liveness ----

TEST(Liveness, CrossCallDetection) {
  DiagEngine d;
  auto tp = Sema(R"(
    int id(int x) { return x; }
    int main() {
      int a = 5;
      int b = id(1);
      return a + b;
    })", &d);
  ASSERT_NE(tp, nullptr);
  auto ir = GenerateIr(*tp, &d);
  const IrFunction* f = ir->FindFunction("main");
  auto live = ComputeLiveness(*f);
  bool any_crossing = false;
  for (const auto& iv : live.intervals) {
    any_crossing = any_crossing || iv.crosses_call;
  }
  EXPECT_TRUE(any_crossing) << "'a' must be live across the call";
}

// ---- ISA encode/decode property ----

TEST(IsaProperty, EncodeDecodeRoundTrip) {
  Rng rng(2024);
  // Decode enforces register classes (16 int, 8 float, kNoMReg for unused
  // memory operands), so the generator draws each field from its op's class.
  const auto is_float_op = [](Op op) {
    switch (op) {
      case Op::kFAdd:
      case Op::kFSub:
      case Op::kFMul:
      case Op::kFDiv:
      case Op::kFNeg:
      case Op::kFMov:
        return true;
      default:
        return false;
    }
  };
  for (int trial = 0; trial < 5000; ++trial) {
    MInstr in;
    in.op = static_cast<Op>(rng.Range(1, static_cast<int64_t>(Op::kMovIF)));
    const bool frd = is_float_op(in.op) || in.op == Op::kFLoad ||
                     in.op == Op::kFStore || in.op == Op::kCvtIF ||
                     in.op == Op::kMovIF;
    const bool frs = is_float_op(in.op) || in.op == Op::kFCmp ||
                     in.op == Op::kCvtFI;
    in.rd = static_cast<uint8_t>(rng.Below(frd ? kNumFloatRegs : kNumIntRegs));
    in.cc = static_cast<Cond>(rng.Below(6));
    in.size1 = rng.Chance(0.5);
    in.bnd = static_cast<uint8_t>(rng.Below(2));
    const auto mem_reg = [&]() -> uint8_t {
      const uint64_t v = rng.Below(kNumIntRegs + 1);
      return v == kNumIntRegs ? kNoMReg : static_cast<uint8_t>(v);
    };
    if (UsesMem(in.op)) {
      in.mem.base = mem_reg();
      in.mem.index = mem_reg();
      in.mem.scale_log2 = static_cast<uint8_t>(rng.Below(4));
      in.mem.seg = static_cast<Seg>(rng.Below(3));
      in.mem.disp = static_cast<int32_t>(rng.Next());
    } else {
      in.rs1 =
          static_cast<uint8_t>(rng.Below(frs ? kNumFloatRegs : kNumIntRegs));
      in.rs2 =
          static_cast<uint8_t>(rng.Below(frs ? kNumFloatRegs : kNumIntRegs));
      in.imm = static_cast<int32_t>(rng.Next());
      in.mem.seg = static_cast<Seg>(rng.Below(3));
      in.mem.scale_log2 = static_cast<uint8_t>(rng.Below(4));
    }
    if (in.op == Op::kMovImm64) {
      in.imm64 = static_cast<int64_t>(rng.Next());
      in.imm = 0;
    }
    std::vector<uint64_t> words;
    Encode(in, &words);
    uint32_t consumed = 0;
    auto back = Decode(words, 0, &consumed);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(consumed, in.NumWords());
    EXPECT_EQ(back->op, in.op);
    EXPECT_EQ(back->rd, in.rd & 0x1f);
    if (UsesMem(in.op)) {
      EXPECT_EQ(back->mem.base, in.mem.base & 0x1f);
      EXPECT_EQ(back->mem.index, in.mem.index & 0x1f);
      EXPECT_EQ(back->mem.disp, in.mem.disp);
      EXPECT_EQ(back->mem.seg, in.mem.seg);
    } else {
      EXPECT_EQ(back->rs1, in.rs1 & 0x1f);
      EXPECT_EQ(back->imm, in.imm);
    }
    if (in.op == Op::kMovImm64) {
      EXPECT_EQ(back->imm64, in.imm64);
    }
    // Instruction words never look like magic words.
    EXPECT_FALSE(HasMagicShape(words[0]));
  }
}

// A word whose dereferenced register fields name registers the machine does
// not have is not a valid encoding: Decode must treat it as data, never hand
// an engine an out-of-range register index.
TEST(IsaProperty, DecodeRejectsOutOfClassRegisterFields) {
  const auto reject = [](MInstr in) {
    std::vector<uint64_t> words;
    Encode(in, &words);
    uint32_t consumed = 0;
    EXPECT_FALSE(Decode(words, 0, &consumed).has_value())
        << OpName(in.op) << " rd=" << int(in.rd) << " rs1=" << int(in.rs1);
  };
  {
    MInstr in;  // integer destination past the 16-register file
    in.op = Op::kAdd;
    in.rd = kNumIntRegs;
    in.rs1 = 0;
    in.rs2 = 1;
    reject(in);
  }
  {
    MInstr in;  // float destination past the 8-register file
    in.op = Op::kFAdd;
    in.rd = kNumFloatRegs;
    in.rs1 = 0;
    in.rs2 = 1;
    reject(in);
  }
  {
    MInstr in;  // memory base that is neither a real register nor kNoMReg
    in.op = Op::kLoad;
    in.rd = 0;
    in.mem.base = kNumIntRegs + 3;
    reject(in);
  }
  {
    MInstr in;  // indirect jump through a nonexistent register
    in.op = Op::kJmpReg;
    in.rs1 = 29;
    reject(in);
  }
}

TEST(IsaProperty, MagicWordsNeverDecode) {
  Rng rng(77);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t prefix = (rng.Next() & ((1ull << 59) - 1)) | (1ull << 58);
    const uint64_t w = MakeMagicWord(prefix, static_cast<uint8_t>(rng.Below(32)));
    EXPECT_TRUE(HasMagicShape(w));
    std::vector<uint64_t> words{w};
    uint32_t consumed = 0;
    EXPECT_FALSE(Decode(words, 0, &consumed).has_value());
  }
}

// ---- loader: magic prefixes ----

TEST(Loader, MagicPrefixesAreUniqueInTheBinary) {
  DiagEngine d;
  auto s = MakeSession(R"(
    private int add(private int x) { return x + 1; }
    int main() {
      private int v = 1;
      private int keep[1];
      keep[0] = add(v);
      return 2;
    }
  )", BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  const Binary& bin = s->compiled->prog->binary;
  ASSERT_NE(bin.magic_call_prefix, 0u);
  ASSERT_NE(bin.magic_ret_prefix, 0u);
  EXPECT_NE(bin.magic_call_prefix, bin.magic_ret_prefix);
  // Count occurrences: every one must be a recorded (non-inverted) site.
  size_t found = 0;
  for (uint64_t w : bin.code) {
    if (HasMagicShape(w) && (MagicPrefixOf(w) == bin.magic_call_prefix ||
                             MagicPrefixOf(w) == bin.magic_ret_prefix)) {
      ++found;
    }
  }
  size_t sites = 0;
  for (const auto& site : bin.magic_sites) {
    sites += site.inverted ? 0 : 1;
  }
  EXPECT_EQ(found, sites);
}

// ---- allocator ----

TEST(Allocator, CustomPolicyRecyclesSizeClasses) {
  RegionAllocator a(0x1000, 1 << 20, AllocPolicy::kCustom);
  const uint64_t p1 = a.Alloc(100);
  ASSERT_NE(p1, 0u);
  a.Free(p1);
  const uint64_t p2 = a.Alloc(100);
  EXPECT_EQ(p1, p2);  // size-class free list reuse
}

TEST(Allocator, SystemPolicyCoalesces) {
  RegionAllocator a(0x1000, 4096, AllocPolicy::kSystem);
  const uint64_t p1 = a.Alloc(1024);
  const uint64_t p2 = a.Alloc(1024);
  const uint64_t p3 = a.Alloc(1024);
  ASSERT_NE(p3, 0u);
  a.Free(p1);
  a.Free(p2);  // coalesces with p1
  const uint64_t big = a.Alloc(2048);
  EXPECT_EQ(big, p1);
}

TEST(Allocator, ExhaustionReturnsNull) {
  RegionAllocator a(0x1000, 256, AllocPolicy::kCustom);
  EXPECT_NE(a.Alloc(128), 0u);
  EXPECT_NE(a.Alloc(64), 0u);
  EXPECT_EQ(a.Alloc(512), 0u);
}

// ---- VM semantics ----

TEST(VmSemantics, SegmentTruncationConfinesWildPointers) {
  // A pointer forged to point far outside the segment still lands inside
  // segment+guard space; the unmapped guard faults (never a cross-region
  // read).
  DiagEngine d;
  auto s = MakeSession(R"(
    int peek(int addr) {
      char *p = (char*)addr;
      return (int)p[0];
    }
  )", BuildPreset::kOurSeg, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  // Forge an address deep in the private region; the access is compiled
  // with an fs (public) prefix, so only its low 32 bits are used.
  const uint64_t prv = s->compiled->prog->map.prv_base + 0x100;
  auto r = s->vm->Call("peek", {prv});
  if (r.ok) {
    // Truncation redirected the access into the public segment: whatever it
    // read, it was public bytes, not the private region.
    SUCCEED();
  } else {
    EXPECT_EQ(r.fault, VmFault::kUnmapped);  // landed in guard space
  }
}

TEST(VmSemantics, MpxCheckFaultsOnForgedPrivatePointer) {
  DiagEngine d;
  auto s = MakeSession(R"(
    int peek(int addr) {
      char *p = (char*)addr;
      return (int)p[0];
    }
  )", BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  const uint64_t prv = s->compiled->prog->map.prv_base + 0x100;
  auto r = s->vm->Call("peek", {prv});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault, VmFault::kBndViolation) << r.fault_msg;
}

TEST(VmSemantics, DivideByZeroFaults) {
  DiagEngine d;
  auto s = MakeSession("int f(int a, int b) { return a / b; }", BuildPreset::kBase, &d);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->vm->Call("f", {10, 2}).ret, 5u);
  auto r = s->vm->Call("f", {10, 0});
  EXPECT_EQ(r.fault, VmFault::kDivZero);
}

TEST(VmSemantics, CacheModelHitsAndMisses) {
  CacheModel c;
  EXPECT_GT(c.Access(0x1000), 0u);  // cold miss
  EXPECT_EQ(c.Access(0x1000), 0u);  // hit
  EXPECT_EQ(c.Access(0x1038), 0u);  // same 64B line
  EXPECT_GT(c.Access(0x1040), 0u);  // next line
}

TEST(VmSemantics, ParallelThreadsScaleOnCores) {
  DiagEngine d;
  VmOptions opts;
  opts.num_cores = 2;
  auto src = R"(
    int spin(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i; }
      return s;
    })";
  auto s = MakeSession(src, BuildPreset::kBase, &d, opts);
  ASSERT_NE(s, nullptr);
  auto two = s->vm->RunParallel({{"spin", {20000}}, {"spin", {20000}}});
  ASSERT_TRUE(two.ok);
  DiagEngine d2;
  auto s2 = MakeSession(src, BuildPreset::kBase, &d2, opts);
  auto four = s2->vm->RunParallel(
      {{"spin", {20000}}, {"spin", {20000}}, {"spin", {20000}}, {"spin", {20000}}});
  ASSERT_TRUE(four.ok);
  // 4 threads on 2 cores take about twice the wall time of 2 threads.
  EXPECT_GT(four.wall_cycles, two.wall_cycles * 17 / 10);
  EXPECT_LT(four.wall_cycles, two.wall_cycles * 23 / 10);
}

}  // namespace
}  // namespace confllvm
