// In-process end-to-end tests for the confccd service tier
// (src/service/): a real ConfccdServer on a real Unix socket, driven by
// real ConfccdClient connections — the same stack `confccd` + `confcc
// --connect` ship, minus process boundaries.
//
// The contracts under test:
//   - concurrent multi-tenant requests return byte-identical artifacts and
//     results to a solo (in-process pipeline) build of the same source;
//   - cross-request single-flight is observable in the shared cache's
//     stats (one producer, N-1 shared restores);
//   - linked images are cached across requests (satellite: link-stage
//     CacheKey chained over per-module codegen keys);
//   - backpressure rejections are retryable `retry` responses, per-client
//     cap before global queue cap, round-robin fairness across tenants;
//   - a client killed mid-request costs the daemon nothing but a dropped
//     response — the pool keeps serving;
//   - under injected service.accept / service.read / service.dispatch
//     chaos, clients that retry still converge to correct results.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "src/driver/confcc.h"
#include "src/driver/pipeline.h"
#include "src/isa/binary.h"
#include "src/service/client.h"
#include "src/service/protocol.h"
#include "src/service/scheduler.h"
#include "src/service/server.h"
#include "src/support/fault_injection.h"
#include "src/vm/vm.h"

namespace confllvm {
namespace {

namespace fs = std::filesystem;

std::string UniqueSocketPath() {
  static std::atomic<int> counter{0};
  // Keep it short: sun_path caps at ~108 bytes.
  return (fs::temp_directory_path() /
          ("confccd_t" + std::to_string(::getpid()) + "_" +
           std::to_string(counter.fetch_add(1)) + ".sock"))
      .string();
}

// What the byte-identity contract compares: everything a tenant can
// observe about an execute response.
struct SoloResult {
  std::string bin_hex;
  bool ran_ok = false;
  uint64_t ret = 0;
  uint64_t cycles = 0;
  uint64_t instrs = 0;
  std::string guest_stdout;
};

// The solo-confcc reference: the exact compile+run path RunConnect would
// have taken without --connect (mirrors the server's ConfigForRequest).
SoloResult SoloExecute(const std::string& source, uint64_t deadline_ms) {
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  config.whole_program = true;
  CompilerInvocation inv(source, config);
  const bool verify = WantsVerify(config);
  EXPECT_TRUE(RunStandardPipeline(&inv, verify)) << inv.diags().ToString();
  auto compiled = inv.TakeProgram();
  SoloResult r;
  r.bin_hex = HexEncode(SerializeBinary(compiled->prog->binary));
  VmOptions vm_opts;
  vm_opts.deadline_ms = deadline_ms;
  auto session = MakeSessionFor(std::move(compiled), vm_opts);
  const Vm::CallResult cr = session->vm->Call("main", {});
  r.ran_ok = cr.ok;
  r.ret = cr.ret;
  r.cycles = cr.cycles;
  r.instrs = cr.instrs;
  r.guest_stdout = session->tlib->stdout_text();
  return r;
}

Json ExecuteRequest(const std::string& client_name, const std::string& source) {
  Json req = Json::Object();
  req.Set("verb", Json::Str("execute"));
  req.Set("client", Json::Str(client_name));
  req.Set("source", Json::Str(source));
  req.Set("verify", Json::Bool(true));
  req.Set("want_bin", Json::Bool(true));
  return req;
}

std::string ResponseSignature(const Json& resp) {
  return std::string(resp.GetBool("ran_ok") ? "1" : "0") + "/" +
         std::to_string(resp.GetUInt("ret")) + "/" +
         std::to_string(resp.GetUInt("cycles")) + "/" +
         std::to_string(resp.GetUInt("instrs")) + "/" +
         resp.GetString("bin_hex") + "/" + resp.GetString("guest_stdout");
}

std::string SoloSignature(const SoloResult& s) {
  return std::string(s.ran_ok ? "1" : "0") + "/" + std::to_string(s.ret) +
         "/" + std::to_string(s.cycles) + "/" + std::to_string(s.instrs) +
         "/" + s.bin_hex + "/" + s.guest_stdout;
}

// A guest that spins until the VM deadline watchdog halts it.
constexpr char kSpinSrc[] =
    "int main() { int i = 1; while (i > 0) { i = 1; } return i; }";

constexpr char kQuickSrc[] = "int main() { return 7; }";

// ---- ServeScheduler unit coverage (no sockets) ----

TEST(ServeSchedulerTest, RoundRobinIsFairAcrossClients) {
  ServeScheduler::Options opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 64;
  opts.max_inflight_per_client = 8;
  ServeScheduler sched(opts);

  std::mutex mu;
  std::vector<std::string> order;
  // Submit-before-Start keeps the interleaving deterministic: the full
  // backlog is queued before the single worker exists.
  for (int i = 0; i < 3; ++i) {
    for (const char* client : {"a", "b", "c"}) {
      EXPECT_EQ(sched.Submit(client,
                             [&, client] {
                               std::lock_guard<std::mutex> lock(mu);
                               order.push_back(client);
                             }),
                ServeScheduler::Admit::kAccepted);
    }
  }
  sched.Start();
  sched.Stop();  // drains the queue before workers exit

  ASSERT_EQ(order.size(), 9u);
  // Strict rotation: one task per client per turn, regardless of backlog
  // shape at submit time.
  const std::vector<std::string> want = {"a", "b", "c", "a", "b",
                                         "c", "a", "b", "c"};
  EXPECT_EQ(order, want);
  EXPECT_EQ(sched.stats().completed, 9u);
  EXPECT_EQ(sched.stats().clients_seen, 3u);
}

TEST(ServeSchedulerTest, PerClientCapThenGlobalQueueCap) {
  ServeScheduler::Options opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 4;
  opts.max_inflight_per_client = 2;
  ServeScheduler sched(opts);
  const auto noop = [] {};

  EXPECT_EQ(sched.Submit("a", noop), ServeScheduler::Admit::kAccepted);
  EXPECT_EQ(sched.Submit("a", noop), ServeScheduler::Admit::kAccepted);
  // A tenant at its own cap is told so even though the queue has room.
  EXPECT_EQ(sched.Submit("a", noop), ServeScheduler::Admit::kClientSaturated);
  EXPECT_EQ(sched.Submit("b", noop), ServeScheduler::Admit::kAccepted);
  EXPECT_EQ(sched.Submit("b", noop), ServeScheduler::Admit::kAccepted);
  // Queue full: a fresh tenant is rejected globally.
  EXPECT_EQ(sched.Submit("c", noop), ServeScheduler::Admit::kQueueFull);

  const ServeScheduler::Stats stats = sched.stats();
  EXPECT_EQ(stats.rejected_client_cap, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.peak_queue_depth, 4u);

  sched.Start();
  sched.Stop();
  EXPECT_EQ(sched.stats().completed, 4u);
}

// ---- End-to-end over the socket ----

class ConfccdServiceTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Instance().Reset(); }

  // Builds and starts a server; returns false on Start failure.
  std::unique_ptr<ConfccdServer> StartServer(ConfccdServer::Options opts) {
    if (opts.socket_path.empty()) {
      opts.socket_path = UniqueSocketPath();
    }
    auto server = std::make_unique<ConfccdServer>(std::move(opts));
    std::string err;
    EXPECT_TRUE(server->Start(&err)) << err;
    return server;
  }
};

TEST_F(ConfccdServiceTest, EightConcurrentClientsMatchSoloByteForByte) {
  // Mixed workload: two serve-bench kernels (large, library-backed) plus a
  // small one-liner, all through one daemon at once.
  const std::vector<std::string> sources = {
      workloads::kServeKernels[0].source,
      workloads::kServeKernels[1].source,
      kQuickSrc,
  };
  std::vector<SoloResult> solo;
  for (const std::string& src : sources) {
    solo.push_back(SoloExecute(src, 5000));
  }

  ConfccdServer::Options opts;
  opts.sched.num_workers = 4;
  auto server = StartServer(std::move(opts));

  constexpr int kClients = 8;
  std::vector<std::vector<std::string>> got(
      kClients, std::vector<std::string>(sources.size()));
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ConfccdClient cli;
      std::string err;
      ASSERT_TRUE(cli.Connect(server->options().socket_path, &err)) << err;
      for (size_t s = 0; s < sources.size(); ++s) {
        // Interleave tenants across sources.
        const size_t slot = (s + static_cast<size_t>(c)) % sources.size();
        Json resp;
        ASSERT_TRUE(cli.CallWithRetry(
            ExecuteRequest("tenant-" + std::to_string(c), sources[slot]),
            &resp, &err))
            << err;
        ASSERT_EQ(resp.GetString("status"), "ok")
            << resp.GetString("error") << "\n"
            << resp.GetString("diagnostics");
        got[c][slot] = ResponseSignature(resp);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  server->Stop();

  for (int c = 0; c < kClients; ++c) {
    for (size_t s = 0; s < sources.size(); ++s) {
      EXPECT_EQ(got[c][s], SoloSignature(solo[s]))
          << "client " << c << " source " << s;
    }
  }
}

TEST_F(ConfccdServiceTest, CrossRequestSingleFlightIsObservableInCacheStats) {
  // Stall the (single-flight) parse stage so every concurrent duplicate
  // provably arrives while the producer is still inside the pipeline.
  std::string ferr;
  ASSERT_TRUE(FaultInjector::Instance().Configure("pipeline.stall.parse=p1.0",
                                                  &ferr))
      << ferr;

  ConfccdServer::Options opts;
  opts.sched.num_workers = 4;
  auto server = StartServer(std::move(opts));

  // A source unique to this test so the cache story is exactly: 8 identical
  // requests, zero prior state.
  const std::string source =
      "int main() { int s = 0; for (int i = 0; i < 9; i = i + 1) "
      "{ s = s + i * 3; } return s; }";

  constexpr int kClients = 8;
  std::vector<std::string> bins(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      ConfccdClient cli;
      std::string err;
      ASSERT_TRUE(cli.Connect(server->options().socket_path, &err)) << err;
      Json resp;
      ASSERT_TRUE(cli.CallWithRetry(
          ExecuteRequest("tenant-" + std::to_string(c), source), &resp, &err))
          << err;
      ASSERT_EQ(resp.GetString("status"), "ok") << resp.GetString("error");
      bins[c] = resp.GetString("bin_hex");
    });
  }
  for (auto& t : threads) {
    t.join();
  }

  const CacheStats stats = server->cache().stats();
  server->Stop();

  // One producer compiled; the other seven restored the finished Load
  // artifact — whole-pipeline dedup across requests from distinct
  // connections.
  const size_t load = static_cast<size_t>(StageId::kLoad);
  const size_t parse = static_cast<size_t>(StageId::kParse);
  EXPECT_EQ(stats.misses_by_stage[load], 1u);
  EXPECT_EQ(stats.misses_by_stage[parse], 1u);
  EXPECT_EQ(stats.hits_by_stage[load], 7u);
  // At least one duplicate arrived mid-compute and waited on the in-flight
  // producer instead of recomputing (the 20 ms parse stall guarantees the
  // window).
  EXPECT_GE(stats.shared_waits, 1u);

  for (int c = 1; c < kClients; ++c) {
    EXPECT_EQ(bins[c], bins[0]) << "client " << c;
  }
  EXPECT_FALSE(bins[0].empty());
}

TEST_F(ConfccdServiceTest, LinkedImageIsCachedAcrossRequests) {
  ConfccdServer::Options opts;
  opts.sched.num_workers = 2;
  auto server = StartServer(std::move(opts));

  Json req = Json::Object();
  req.Set("verb", Json::Str("link"));
  req.Set("client", Json::Str("linker"));
  Json modules = Json::Array();
  Json leaf = Json::Object();
  leaf.Set("name", Json::Str("leaf"));
  leaf.Set("source", Json::Str("int square(int x) { return x * x; }"));
  modules.Append(std::move(leaf));
  Json app = Json::Object();
  app.Set("name", Json::Str("app"));
  app.Set("source",
          Json::Str("import \"leaf\";\nint main() { return square(6); }"));
  modules.Append(std::move(app));
  req.Set("modules", std::move(modules));
  req.Set("verify", Json::Bool(true));
  req.Set("want_bin", Json::Bool(true));

  ConfccdClient cli;
  std::string err;
  ASSERT_TRUE(cli.Connect(server->options().socket_path, &err)) << err;

  Json first;
  ASSERT_TRUE(cli.CallWithRetry(req, &first, &err)) << err;
  ASSERT_EQ(first.GetString("status"), "ok") << first.GetString("error");
  EXPECT_FALSE(first.GetBool("link_cached"));

  Json second;
  ASSERT_TRUE(cli.CallWithRetry(req, &second, &err)) << err;
  ASSERT_EQ(second.GetString("status"), "ok") << second.GetString("error");
  EXPECT_TRUE(second.GetBool("link_cached"));
  EXPECT_EQ(second.GetString("bin_hex"), first.GetString("bin_hex"));
  EXPECT_FALSE(first.GetString("bin_hex").empty());

  const CacheStats stats = server->cache().stats();
  const size_t link = static_cast<size_t>(StageId::kLink);
  EXPECT_EQ(stats.misses_by_stage[link], 1u);
  EXPECT_EQ(stats.hits_by_stage[link], 1u);
  server->Stop();
}

TEST_F(ConfccdServiceTest, BackpressureRejectsAreRetryable) {
  ConfccdServer::Options opts;
  opts.sched.num_workers = 1;
  opts.sched.max_queue_depth = 1;
  opts.sched.max_inflight_per_client = 1;
  opts.default_deadline_ms = 400;  // the spin guest occupies the worker
  auto server = StartServer(std::move(opts));
  const std::string sock = server->options().socket_path;

  // Tenant A wedges the single worker for ~400 ms (deadline-bounded spin).
  std::thread spinner([&] {
    ConfccdClient cli;
    std::string err;
    ASSERT_TRUE(cli.Connect(sock, &err)) << err;
    Json resp;
    Json req = Json::Object();
    req.Set("verb", Json::Str("execute"));
    req.Set("client", Json::Str("tenant-a"));
    req.Set("source", Json::Str(kSpinSrc));
    req.Set("deadline_ms", Json::UInt(400));
    ASSERT_TRUE(cli.Call(std::move(req), &resp, &err)) << err;
    EXPECT_EQ(resp.GetString("status"), "ok");
    EXPECT_FALSE(resp.GetBool("ran_ok"));  // the watchdog halted it
  });
  // Let the worker dequeue tenant-a's request.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // Same tenant again: per-client in-flight cap, retryable.
  {
    ConfccdClient cli;
    std::string err;
    ASSERT_TRUE(cli.Connect(sock, &err)) << err;
    Json resp;
    ASSERT_TRUE(cli.Call(ExecuteRequest("tenant-a", kQuickSrc), &resp, &err))
        << err;
    EXPECT_EQ(resp.GetString("status"), "retry") << resp.Dump();
    EXPECT_NE(resp.GetString("error").find("in-flight"), std::string::npos)
        << resp.Dump();
  }

  // Tenant B fills the depth-1 queue...
  std::thread queued([&] {
    ConfccdClient cli;
    std::string err;
    ASSERT_TRUE(cli.Connect(sock, &err)) << err;
    Json resp;
    ASSERT_TRUE(cli.Call(ExecuteRequest("tenant-b", kQuickSrc), &resp, &err))
        << err;
    EXPECT_EQ(resp.GetString("status"), "ok") << resp.Dump();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...so tenant C bounces off the global cap — but CallWithRetry rides the
  // retryable reject to an eventual success once the backlog drains.
  {
    ConfccdClient cli;
    std::string err;
    ASSERT_TRUE(cli.Connect(sock, &err)) << err;
    Json resp;
    ASSERT_TRUE(cli.Call(ExecuteRequest("tenant-c", kQuickSrc), &resp, &err))
        << err;
    EXPECT_EQ(resp.GetString("status"), "retry") << resp.Dump();
    EXPECT_NE(resp.GetString("error").find("queue full"), std::string::npos)
        << resp.Dump();

    int retries = 0;
    ASSERT_TRUE(cli.CallWithRetry(ExecuteRequest("tenant-c", kQuickSrc),
                                  &resp, &err, /*max_attempts=*/50, &retries))
        << err;
    EXPECT_EQ(resp.GetString("status"), "ok");
    EXPECT_EQ(resp.GetUInt("ret"), 7u);
  }

  spinner.join();
  queued.join();

  const ServeScheduler::Stats stats = server->scheduler().stats();
  EXPECT_GE(stats.rejected_client_cap, 1u);
  EXPECT_GE(stats.rejected_queue_full, 1u);
  server->Stop();
}

TEST_F(ConfccdServiceTest, KilledClientMidRequestDoesNotPoisonThePool) {
  ConfccdServer::Options opts;
  opts.sched.num_workers = 1;
  opts.default_deadline_ms = 300;
  auto server = StartServer(std::move(opts));
  const std::string sock = server->options().socket_path;

  // A raw connection: send an execute whose guest runs ~300 ms, then
  // vanish before the response.
  {
    sockaddr_un addr;
    memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    ASSERT_LT(sock.size(), sizeof addr.sun_path);
    memcpy(addr.sun_path, sock.c_str(), sock.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    Json req = Json::Object();
    req.Set("verb", Json::Str("execute"));
    req.Set("client", Json::Str("ghost"));
    req.Set("source", Json::Str(kSpinSrc));
    req.Set("id", Json::UInt(1));
    ASSERT_TRUE(WriteFrame(fd, req.Dump()));
    ::close(fd);  // the tenant dies mid-request
  }

  // The worker finishes the orphaned request and discovers the peer is
  // gone at response time; nothing leaks into the pool.
  bool dropped = false;
  for (int i = 0; i < 200; ++i) {
    if (server->server_stats().responses_dropped >= 1) {
      dropped = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_TRUE(dropped);

  // The pool still serves the next tenant.
  ConfccdClient cli;
  std::string err;
  ASSERT_TRUE(cli.Connect(sock, &err)) << err;
  Json resp;
  ASSERT_TRUE(cli.CallWithRetry(ExecuteRequest("alive", kQuickSrc), &resp,
                                &err))
      << err;
  EXPECT_EQ(resp.GetString("status"), "ok");
  EXPECT_EQ(resp.GetUInt("ret"), 7u);
  server->Stop();
}

TEST_F(ConfccdServiceTest, ChaosServiceFaultsAreSurvivable) {
  const SoloResult solo = SoloExecute(kQuickSrc, 5000);

  // Deterministic nth-hit triggers on every service-tier site: the 2nd
  // accepted connection is dropped, the 5th frame read severs its
  // connection, the 3rd dispatched request fails retryably.
  std::string ferr;
  ASSERT_TRUE(FaultInjector::Instance().Configure(
      "service.accept=n2,service.read=n5,service.dispatch=n3", &ferr))
      << ferr;

  ConfccdServer::Options opts;
  opts.sched.num_workers = 2;
  auto server = StartServer(std::move(opts));

  // Fresh connection per request so the accept site gets traffic too.
  for (int i = 0; i < 12; ++i) {
    ConfccdClient cli;
    std::string err;
    Json resp;
    // Connect failures surface on the first Call (the daemon may drop us
    // right after accept); CallWithRetry reconnects through all of it.
    if (!cli.Connect(server->options().socket_path, &err)) {
      ADD_FAILURE() << err;
      continue;
    }
    ASSERT_TRUE(cli.CallWithRetry(
        ExecuteRequest("chaos-" + std::to_string(i % 3), kQuickSrc), &resp,
        &err, /*max_attempts=*/30))
        << "request " << i << ": " << err;
    ASSERT_EQ(resp.GetString("status"), "ok") << resp.GetString("error");
    EXPECT_EQ(ResponseSignature(resp), SoloSignature(solo)) << "request " << i;
  }

  const ConfccdServer::ServerStats stats = server->server_stats();
  EXPECT_EQ(stats.connections_dropped_inject, 1u);
  EXPECT_EQ(stats.injected_read_faults, 1u);
  EXPECT_EQ(stats.injected_dispatch_faults, 1u);
  server->Stop();
}

}  // namespace
}  // namespace confllvm
