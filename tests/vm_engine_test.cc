// Engine-differential tests: the fast execution engine (token-threaded
// dispatch over an ExecImage, flat region memory) and the trace tier above
// it (runtime block profiling + whole-block compiled handlers) must be
// bit-identical in observable behaviour to the reference stepper —
// CallResult (return value, fault kind/pc/message), VmStats (every
// counter), cache-model hit/miss streams, trusted-library side effects —
// for every workload under all eight presets, on success AND on every
// fault path. The trace sessions run with a tiny promotion threshold so
// the promoted whole-block path actually executes in every test. Plus
// unit tests for the satellites: ExecImage block metadata (leaders across
// jump/call/fault edges, fused pairs spanning block boundaries, promotion
// under RunParallel), exact max_instrs enforcement, Memory::Map
// end-address overflow, and the O(1) function-name index.
#include <gtest/gtest.h>

#include "bench/workloads.h"
#include "src/driver/artifact_cache.h"
#include "src/driver/confcc.h"
#include "src/isa/layout.h"
#include "src/runtime/loader.h"
#include "src/vm/exec_image.h"
#include "src/vm/trace_tier.h"
#include "tests/test_util.h"

namespace confllvm {
namespace {

using testutil::DiffCall;
using testutil::EngineOpts;
using testutil::EnginePair;
using testutil::ExpectSameResult;
using testutil::ExpectSameStats;
using testutil::kTestTraceThreshold;
using testutil::MakePair;
using workloads::kNumSpecKernels;
using workloads::kSpecKernels;

// ---- the tentpole guarantee: every workload × every preset ----

class SpecKernelDiff : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(All, SpecKernelDiff,
                         ::testing::Range(0, kNumSpecKernels),
                         [](const auto& info) {
                           return kSpecKernels[info.param].name;
                         });

TEST_P(SpecKernelDiff, IdenticalUnderAllPresets) {
  const auto& kernel = kSpecKernels[GetParam()];
  ArtifactCache cache;  // share the front end across the 16 compiles
  for (BuildPreset preset : kAllBuildPresets) {
    SCOPED_TRACE(PresetName(preset));
    auto p = MakePair(kernel.source, preset, &cache);
    ASSERT_NE(p.ref, nullptr);
    ASSERT_NE(p.fast, nullptr);
    DiffCall(&p, "main", {});
  }
}

struct AppCase {
  const char* name;
};

class AppDiff : public ::testing::TestWithParam<AppCase> {};
INSTANTIATE_TEST_SUITE_P(All, AppDiff,
                         ::testing::Values(AppCase{"nginx"}, AppCase{"ldap"},
                                           AppCase{"privado"},
                                           AppCase{"merkle"}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST_P(AppDiff, IdenticalUnderAllPresets) {
  const std::string name = GetParam().name;
  const char* src = testutil::AppSource(name);
  ArtifactCache cache;
  for (BuildPreset preset : kAllBuildPresets) {
    SCOPED_TRACE(PresetName(preset));
    auto p = MakePair(src, preset, &cache);
    ASSERT_NE(p.ref, nullptr);
    ASSERT_NE(p.fast, nullptr);
    if (name == "nginx") {
      for (Session* s : {p.ref.get(), p.fast.get(), p.trace.get()}) {
        s->tlib->AddFile("index.html", std::string(1024, 'x'));
        for (int i = 0; i < 4; ++i) {
          s->tlib->PushRx(0, "GET index.html\n");
        }
      }
    }
    DiffCall(&p, "main", {});
    // Trusted-library side effects must agree too.
    for (Session* s : {p.fast.get(), p.trace.get()}) {
      EXPECT_EQ(p.ref->tlib->SentBytes(0), s->tlib->SentBytes(0));
      EXPECT_EQ(p.ref->tlib->log(), s->tlib->log());
      EXPECT_EQ(p.ref->tlib->declassified(), s->tlib->declassified());
    }
  }
}

TEST(EngineDiff, MultiCallSequencePreservesCacheModelState) {
  // Back-to-back calls on one Vm: the D-cache model carries state across
  // calls, so the second call's cycle count depends on the first — both
  // engines must agree call by call.
  auto p = MakePair(workloads::kMerkle, BuildPreset::kOurMpx);
  ASSERT_NE(p.ref, nullptr);
  ASSERT_NE(p.fast, nullptr);
  ASSERT_NE(p.trace, nullptr);
  DiffCall(&p, "merkle_build", {64});
  DiffCall(&p, "merkle_read_all", {0, 64});
  DiffCall(&p, "merkle_read_all", {0, 64});
  // Promotion state carries across calls on one Vm: blocks counted hot in
  // the first call run promoted in the later ones, and equality holds.
  const TraceTier* tier = p.trace->vm->trace_tier();
  ASSERT_NE(tier, nullptr);
  EXPECT_GT(tier->stats.promoted_blocks, 0u);
  EXPECT_GT(tier->Telemetry().block_runs, 0u);
}

TEST(EngineDiff, RunParallelWaveAccountingIdentical) {
  const char* src = R"(
    int spin(int n) {
      int s = 0;
      for (int i = 0; i < n; i = i + 1) { s = s + i * i; }
      return s;
    })";
  for (BuildPreset preset : {BuildPreset::kBase, BuildPreset::kOurMpx}) {
    SCOPED_TRACE(PresetName(preset));
    VmOptions base;
    base.num_cores = 2;
    base.quantum = 500;  // tiny slices: many waves, mid-block preemptions
    DiagEngine d1;
    VmOptions ro = base;
    ro.engine = VmEngine::kRef;
    auto ref = MakeSession(src, preset, &d1, ro);
    ASSERT_NE(ref, nullptr) << d1.ToString();
    std::vector<Vm::ThreadSpec> specs;
    for (uint64_t n : {1000u, 3000u, 500u, 2000u, 1500u}) {
      specs.push_back({"spin", {n}});
    }
    const auto r = ref->vm->RunParallel(specs);
    // Trace under a tiny quantum exercises the bounded-slice entry bail:
    // the loop block promotes, and most promoted entries must still stop
    // exactly at the reference engine's budget boundary.
    for (VmEngine e : {VmEngine::kFast, VmEngine::kTrace}) {
      SCOPED_TRACE(EngineName(e));
      VmOptions fo = base;
      fo.engine = e;
      fo.trace_threshold = kTestTraceThreshold;
      DiagEngine d2;
      auto fast = MakeSession(src, preset, &d2, fo);
      ASSERT_NE(fast, nullptr) << d2.ToString();
      const auto f = fast->vm->RunParallel(specs);
      EXPECT_EQ(r.ok, f.ok);
      EXPECT_EQ(r.wall_cycles, f.wall_cycles);
      ASSERT_EQ(r.per_thread.size(), f.per_thread.size());
      for (size_t i = 0; i < r.per_thread.size(); ++i) {
        SCOPED_TRACE(i);
        ExpectSameResult(r.per_thread[i], f.per_thread[i]);
      }
      ExpectSameStats(*ref->vm, *fast->vm);
      if (e == VmEngine::kTrace) {
        const TraceTier* tier = fast->vm->trace_tier();
        ASSERT_NE(tier, nullptr);
        EXPECT_GT(tier->stats.promoted_blocks, 0u);
        EXPECT_GT(tier->stats.entry_bails, 0u);
      }
    }
  }
}

// ---- fault paths: identical VmFault, fault_pc, and message ----

struct FaultCase {
  const char* name;
  const char* src;
  const char* entry;
  std::vector<uint64_t> args;
  BuildPreset preset;
  VmFault want;
};

const char* kWildStore = R"(
    int poke(int x) {
      char *p = (char*)x;
      p[0] = 1;
      return 0;
    })";

const char* kHijack = R"(
    int gadget(int x) { return x * 3; }
    int dispatch(int target) {
      int (*f)(int) = (int (*)(int))target;
      return f(7);
    })";

class FaultDiff : public ::testing::TestWithParam<FaultCase> {};
INSTANTIATE_TEST_SUITE_P(
    All, FaultDiff,
    ::testing::Values(
        FaultCase{"div_zero", "int f(int x) { return 10 / x; }", "f", {0},
                  BuildPreset::kOurMpx, VmFault::kDivZero},
        FaultCase{"rem_zero", "int f(int x) { return 10 % x; }", "f", {0},
                  BuildPreset::kOurSeg, VmFault::kDivZero},
        FaultCase{"bnd_violation_mpx", kWildStore, "poke", {8},
                  BuildPreset::kOurMpx, VmFault::kBndViolation},
        FaultCase{"unmapped_base", kWildStore, "poke", {8}, BuildPreset::kBase,
                  VmFault::kUnmapped},
        // 200 MiB is past OurSeg's carved working set but inside the 4 GiB
        // segment: the classic in-segment guard-space fault.
        FaultCase{"unmapped_seg_guard", kWildStore, "poke", {200 * 1024 * 1024},
                  BuildPreset::kOurSeg, VmFault::kUnmapped},
        FaultCase{"trusted_check",
                  R"(private void *prv_malloc(int n);
                     int send(int fd, char *buf, int n);
                     int leak() {
                       private char *p = (private char*)prv_malloc(32);
                       send(0, (char*)(int)p, 32);
                       return 0;
                     })",
                  "leak", {}, BuildPreset::kOurMpx, VmFault::kTrustedCheck},
        FaultCase{"chkstk_runaway_recursion",
                  "int f(int n) { return f(n) + 1; }", "f", {1},
                  BuildPreset::kOurMpx, VmFault::kChkstk}),
    [](const auto& info) { return std::string(info.param.name); });

TEST_P(FaultDiff, IdenticalFaultOnAllEngines) {
  const FaultCase& c = GetParam();
  auto p = MakePair(c.src, c.preset);
  ASSERT_NE(p.ref, nullptr);
  ASSERT_NE(p.fast, nullptr);
  ASSERT_NE(p.trace, nullptr);
  const auto ref = p.ref->vm->Call(c.entry, c.args);
  EXPECT_FALSE(ref.ok);
  EXPECT_EQ(ref.fault, c.want) << FaultName(ref.fault) << ": " << ref.fault_msg;
  for (Session* s : {p.fast.get(), p.trace.get()}) {
    SCOPED_TRACE(EngineName(s == p.fast.get() ? VmEngine::kFast
                                              : VmEngine::kTrace));
    const auto got = s->vm->Call(c.entry, c.args);
    ExpectSameResult(ref, got);
    ExpectSameStats(*p.ref->vm, *s->vm);
  }
}

TEST(FaultDiffExtra, CfiTrapOnMidFunctionIndirectCall) {
  auto p = MakePair(kHijack, BuildPreset::kOurMpx);
  ASSERT_NE(p.ref, nullptr);
  ASSERT_NE(p.fast, nullptr);
  const uint64_t mid = CodeAddr(p.ref->compiled->prog->EntryWordOf("gadget") + 3);
  ASSERT_EQ(mid, CodeAddr(p.fast->compiled->prog->EntryWordOf("gadget") + 3));
  DiffCall(&p, "dispatch", {mid});
  EXPECT_EQ(p.ref->vm->Call("dispatch", {mid}).fault, VmFault::kCfiTrap);
}

TEST(FaultDiffExtra, BadJumpOnIndirectCallOutsideCode) {
  // Base has no CFI: the icall itself must reject the non-code target.
  auto p = MakePair(kHijack, BuildPreset::kBase);
  ASSERT_NE(p.ref, nullptr);
  ASSERT_NE(p.fast, nullptr);
  const uint64_t heap = p.ref->compiled->prog->map.pub_heap + 64;
  const auto ref = p.ref->vm->Call("dispatch", {heap});
  EXPECT_EQ(ref.fault, VmFault::kBadJump) << ref.fault_msg;
  ExpectSameResult(ref, p.fast->vm->Call("dispatch", {heap}));
  ExpectSameResult(ref, p.trace->vm->Call("dispatch", {heap}));
}

TEST(FaultDiffExtra, ExecDataOnIndirectCallIntoDataWord) {
  // Under Base the icall only checks the code range, so aiming it at a
  // movimm64 payload word executes a data word.
  const char* src = R"(
    int gadget(int x) { return x + 1000000000000; }
    int dispatch(int target) {
      int (*f)(int) = (int (*)(int))target;
      return f(7);
    })";
  auto p = MakePair(src, BuildPreset::kBase);
  ASSERT_NE(p.ref, nullptr);
  ASSERT_NE(p.fast, nullptr);
  const auto& decoded = p.ref->compiled->prog->decoded;
  uint64_t data_word = 0;
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (!decoded[i].instr.has_value()) {
      data_word = i;
      break;
    }
  }
  ASSERT_NE(data_word, 0u) << "expected a movimm64 payload word";
  const auto ref = p.ref->vm->Call("dispatch", {CodeAddr(data_word)});
  EXPECT_EQ(ref.fault, VmFault::kExecData) << ref.fault_msg;
  for (Session* s : {p.fast.get(), p.trace.get()}) {
    ExpectSameResult(ref, s->vm->Call("dispatch", {CodeAddr(data_word)}));
    ExpectSameStats(*p.ref->vm, *s->vm);
  }
}

TEST(FaultDiffExtra, BadJumpOnSmashedReturnAddress) {
  // Overwrite the saved return address with a non-code value under Base:
  // the plain ret must fault with bad-jump, identically on both engines.
  const char* src = R"(
    int smash(int off, int fake) {
      char buf[8];
      int *ra = (int*)(buf + off);
      *ra = fake;
      return 1;
    })";
  auto p = MakePair(src, BuildPreset::kBase);
  ASSERT_NE(p.ref, nullptr);
  ASSERT_NE(p.fast, nullptr);
  bool faulted = false;
  for (uint64_t off = 8; off <= 48; off += 8) {
    SCOPED_TRACE(off);
    const auto ref = p.ref->vm->Call("smash", {off, 0x1234});
    ExpectSameResult(ref, p.fast->vm->Call("smash", {off, 0x1234}));
    ExpectSameResult(ref, p.trace->vm->Call("smash", {off, 0x1234}));
    faulted = faulted || ref.fault == VmFault::kBadJump;
  }
  EXPECT_TRUE(faulted) << "no offset reached the saved return address";
  ExpectSameStats(*p.ref->vm, *p.fast->vm);
  ExpectSameStats(*p.ref->vm, *p.trace->vm);
}

TEST(FaultDiffExtra, BadJumpOnJmpReg) {
  // jmpreg only appears inside compiler-emitted CFI return sequences, so a
  // hostile target needs a hand-assembled binary: f loads a bad address and
  // jumpregs to it.
  for (const uint64_t bad :
       {uint64_t{0x1234}, kCodeBase + 7, kCodeBase + 8 * 1000000}) {
    SCOPED_TRACE(bad);
    Vm::CallResult results[3];
    VmStats stats[3];
    int i = 0;
    for (VmEngine e : {VmEngine::kRef, VmEngine::kFast, VmEngine::kTrace}) {
      Binary bin;
      MInstr mov{};
      mov.op = Op::kMovImm64;
      mov.rd = 1;
      mov.imm64 = static_cast<int64_t>(bad);
      Encode(mov, &bin.code);
      MInstr jr{};
      jr.op = Op::kJmpReg;
      jr.rs1 = 1;
      Encode(jr, &bin.code);
      bin.functions.push_back({"f", 0, 0, 0});
      DiagEngine diags;
      auto prog = LoadBinary(std::move(bin), LoadOptions{}, &diags);
      ASSERT_NE(prog, nullptr) << diags.ToString();
      TrustedLib tlib;
      Vm vm(prog.get(), &tlib, EngineOpts(e));
      results[i] = vm.Call("f", {});
      stats[i] = vm.stats();
      ++i;
    }
    EXPECT_EQ(results[0].fault, VmFault::kBadJump)
        << results[0].fault_msg;
    for (int j = 1; j < 3; ++j) {
      SCOPED_TRACE(j);
      ExpectSameResult(results[0], results[j]);
      EXPECT_EQ(stats[0].instrs, stats[j].instrs);
      EXPECT_EQ(stats[0].cycles, stats[j].cycles);
    }
  }
}

// ---- satellite: exact max_instrs enforcement ----

TEST(MaxInstrs, EnforcedExactlyOnBothEngines) {
  const char* spin = "int f() { int i = 0; while (i >= 0) { i = i + 1; } return i; }";
  for (VmEngine e : {VmEngine::kRef, VmEngine::kFast, VmEngine::kTrace}) {
    SCOPED_TRACE(EngineName(e));
    VmOptions o = EngineOpts(e);
    o.max_instrs = 777;
    DiagEngine d;
    auto s = MakeSession(spin, BuildPreset::kOurMpx, &d, o);
    ASSERT_NE(s, nullptr) << d.ToString();
    const auto r = s->vm->Call("f", {});
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.fault, VmFault::kInstrLimit);
    // Exactly max_instrs instructions ran — not one more.
    EXPECT_EQ(r.instrs, 777u);
  }
}

TEST(MaxInstrs, LimitEqualToProgramLengthIsNotAFault) {
  const char* src = "int f() { return 41; }";
  DiagEngine d;
  auto probe = MakeSession(src, BuildPreset::kBase, &d);
  ASSERT_NE(probe, nullptr) << d.ToString();
  const auto full = probe->vm->Call("f", {});
  ASSERT_TRUE(full.ok);
  for (VmEngine e : {VmEngine::kRef, VmEngine::kFast, VmEngine::kTrace}) {
    SCOPED_TRACE(EngineName(e));
    VmOptions exact = EngineOpts(e);
    exact.max_instrs = full.instrs;
    DiagEngine d2;
    auto s = MakeSession(src, BuildPreset::kBase, &d2, exact);
    ASSERT_NE(s, nullptr);
    EXPECT_TRUE(s->vm->Call("f", {}).ok);

    VmOptions short_by_one = EngineOpts(e);
    short_by_one.max_instrs = full.instrs - 1;
    DiagEngine d3;
    auto s2 = MakeSession(src, BuildPreset::kBase, &d3, short_by_one);
    ASSERT_NE(s2, nullptr);
    const auto r = s2->vm->Call("f", {});
    EXPECT_EQ(r.fault, VmFault::kInstrLimit);
    EXPECT_EQ(r.instrs, full.instrs - 1);
  }
}

// ---- satellite: Memory::Map / IsMapped edge cases ----

TEST(MemoryMap, ZeroSizeMapsNothing) {
  Memory m;
  m.Map(0x10000, 0);
  EXPECT_FALSE(m.IsMapped(0x10000, 1));
  uint64_t v = 0;
  EXPECT_FALSE(m.Read(0x10000, 8, &v));
  EXPECT_TRUE(m.IsMapped(0x10000, 0));  // vacuously: nothing to check
}

TEST(MemoryMap, EndAddressOverflowClampsToTop) {
  Memory m;
  const uint64_t base = ~0ull - 3 * Memory::kPageSize + 1;
  // base + size wraps past 2^64; the map must clamp, not wrap to a tiny
  // (or empty) page range.
  m.Map(base, 8 * Memory::kPageSize);
  EXPECT_TRUE(m.IsMapped(base, 3 * Memory::kPageSize));
  EXPECT_TRUE(m.IsMapped(~0ull - 8, 8));
  uint64_t v = 0;
  EXPECT_TRUE(m.Write(base, 8, 0x1122334455667788ull));
  EXPECT_TRUE(m.Read(base, 8, &v));
  EXPECT_EQ(v, 0x1122334455667788ull);
  EXPECT_FALSE(m.IsMapped(base - Memory::kPageSize, 8));
}

TEST(MemoryMap, FlatRegionsBackRangesAndFaultOutside) {
  Memory m;
  m.MapFlat(0x40000000, 0x10000);
  EXPECT_TRUE(m.IsMapped(0x40000000, 0x10000));
  EXPECT_FALSE(m.IsMapped(0x40000000 + 0x10000, 1));
  uint64_t v = ~0ull;
  EXPECT_TRUE(m.Read(0x40000000, 8, &v));
  EXPECT_EQ(v, 0u);  // zero-filled
  EXPECT_TRUE(m.Write(0x4000fff8, 8, 42));
  ASSERT_NE(m.FlatPtr(0x4000fff8, 8), nullptr);
  EXPECT_EQ(m.FlatPtr(0x4000fff9, 8), nullptr);  // crosses the region end
  // An 8-byte access straddling the region end fails like a guard hit.
  EXPECT_FALSE(m.Read(0x4000fffc, 8, &v));
  // Paged and flat mappings coexist.
  m.Map(0x80000000, 0x1000);
  EXPECT_TRUE(m.Write(0x80000000, 8, 7));
  EXPECT_TRUE(m.Read(0x80000000, 8, &v));
  EXPECT_EQ(v, 7u);
}

// ---- satellite: function-name index ----

TEST(FunctionIndex, FindsAllAndTracksAppends) {
  Binary bin;
  for (int i = 0; i < 100; ++i) {
    bin.functions.push_back({"fn" + std::to_string(i),
                             static_cast<uint32_t>(i), 0, 0});
  }
  EXPECT_EQ(bin.FunctionIndex("fn0"), 0);
  EXPECT_EQ(bin.FunctionIndex("fn99"), 99);
  EXPECT_EQ(bin.FunctionIndex("nope"), -1);
  // Appending after a lookup must invalidate the lazily built index.
  bin.functions.push_back({"late", 100, 0, 0});
  EXPECT_EQ(bin.FunctionIndex("late"), 100);
  // Duplicate names resolve to the first definition, like the old scan.
  bin.functions.push_back({"fn0", 101, 0, 0});
  EXPECT_EQ(bin.FunctionIndex("fn0"), 0);
}

// ---- satellite: ExecImage block metadata + trace-tier structure ----

// A branchy program with a loop, a call, and a faulting edge: exercises
// leader identification across jump targets, call targets and the
// fall-through words after every terminator.
const char* kBlocky = R"(
    int helper(int x) { return x * 2 + 1; }
    int main() {
      int s = 0;
      for (int i = 0; i < 50; i = i + 1) {
        if (i % 3 == 0) { s = s + helper(i); } else { s = s - i; }
      }
      return s;
    })";

TEST(BlockMetadata, LeadersCoverJumpCallAndFaultEdges) {
  DiagEngine d;
  auto s = MakeSession(kBlocky, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  const LoadedProgram& prog = *s->compiled->prog;
  ASSERT_NE(prog.exec_image, nullptr);
  const ExecImage& img = *prog.exec_image;
  ASSERT_FALSE(img.blocks.empty());
  ASSERT_EQ(img.block_of.size(), prog.decoded.size());

  // Every function entry is a block leader.
  for (const BinFunction& f : prog.binary.functions) {
    const uint32_t bid = img.block_of[f.entry_word];
    ASSERT_NE(bid, ExecImage::kNoBlock) << f.name;
    EXPECT_EQ(img.blocks[bid].leader, f.entry_word) << f.name;
  }

  for (size_t bid = 0; bid < img.blocks.size(); ++bid) {
    SCOPED_TRACE(bid);
    const ExecBlock& b = img.blocks[bid];
    // Extents are sane and every word in the block maps back to it.
    ASSERT_LT(b.leader, b.end);
    ASSERT_GE(b.num_instrs, 1u);
    EXPECT_EQ(img.block_of[b.leader], bid);
    if (b.has_term) {
      EXPECT_EQ(img.block_of[b.term], bid);
      EXPECT_LT(b.term, b.end);
    } else {
      // Fall-through block: ends where the next leader (or a data word)
      // begins, and that edge is its only successor.
      EXPECT_EQ(b.term, b.end);
      ASSERT_EQ(b.nsucc, 1);
      EXPECT_EQ(b.succ[0], b.end);
    }
    // Static successors land on leaders (or data words, where execution
    // faults — those carry no block).
    for (uint8_t k = 0; k < b.nsucc; ++k) {
      const uint32_t succ = b.succ[k];
      if (succ < img.block_of.size() &&
          img.block_of[succ] != ExecImage::kNoBlock) {
        EXPECT_EQ(img.blocks[img.block_of[succ]].leader, succ);
      }
    }
    // A word after the terminator of a has_term block is a leader if it is
    // an instruction (the fall-through resumption point).
    if (b.has_term && b.end < img.block_of.size() &&
        prog.decoded[b.end].instr.has_value()) {
      ASSERT_NE(img.block_of[b.end], ExecImage::kNoBlock);
      EXPECT_EQ(img.blocks[img.block_of[b.end]].leader, b.end);
    }
  }

  // movimm64 payload (data) words belong to no block.
  for (size_t w = 0; w < prog.decoded.size(); ++w) {
    if (!prog.decoded[w].instr.has_value()) {
      EXPECT_EQ(img.block_of[w], ExecImage::kNoBlock) << w;
    }
  }
}

TEST(BlockMetadata, FusedPairsMaySpanBlockBoundaries) {
  // The fusion pass pairs adjacent records with no regard for block edges
  // (a jmp fuses with its TARGET instruction, a leader). The trace tier
  // must stay correct anyway: it patches only leader slots and compiles
  // promoted blocks from unfused records, so spanning pairs merely
  // undercount entries. This test proves such records exist, then that the
  // trace engine is still bit-identical on the very program containing
  // them (DiffCall), promotion included.
  ArtifactCache cache;
  size_t spanning = 0;
  for (BuildPreset preset : kAllBuildPresets) {
    SCOPED_TRACE(PresetName(preset));
    auto p = MakePair(kBlocky, preset, &cache);
    ASSERT_NE(p.ref, nullptr);
    ASSERT_NE(p.trace, nullptr);
    const LoadedProgram& prog = *p.trace->compiled->prog;
    const ExecImage& img = *prog.exec_image;
    for (size_t w = 0; w < img.recs.size(); ++w) {
      if (img.recs[w].handler < kNumBaseHandlers) {
        continue;  // unfused
      }
      ExecRecord base;
      FillBaseExecRecord(prog, w, &base);
      // The fused record's second element sits at the first element's
      // natural successor; if that word is a leader (or in a different
      // block), the pair spans a block boundary.
      const uint32_t second = base.next;
      if (second < img.block_of.size() &&
          img.block_of[second] != ExecImage::kNoBlock &&
          (img.blocks[img.block_of[second]].leader == second ||
           img.block_of[second] != img.block_of[w])) {
        ++spanning;
      }
    }
    DiffCall(&p, "main", {});
    const TraceTier* tier = p.trace->vm->trace_tier();
    ASSERT_NE(tier, nullptr);
    EXPECT_GT(tier->stats.promoted_blocks, 0u);
  }
  EXPECT_GT(spanning, 0u)
      << "expected at least one fused record spanning a block boundary";
}

TEST(BlockMetadata, TraceTierPatchesOnlyLeaderSlotsOfItsPrivateCopy) {
  DiagEngine d;
  auto s = MakeSession(kBlocky, BuildPreset::kOurMpx, &d,
                       EngineOpts(VmEngine::kTrace));
  ASSERT_NE(s, nullptr) << d.ToString();
  const LoadedProgram& prog = *s->compiled->prog;
  const ExecImage& img = *prog.exec_image;
  const TraceTier* tier = s->vm->trace_tier();
  ASSERT_NE(tier, nullptr);
  ASSERT_EQ(tier->recs.size(), img.recs.size());
  EXPECT_GT(tier->stats.candidate_blocks, 0u);
  for (size_t w = 0; w < img.recs.size(); ++w) {
    SCOPED_TRACE(w);
    // The shared image never carries trace handlers.
    ASSERT_LT(img.recs[w].handler, kHTraceCount);
    const uint32_t bid = img.block_of[w];
    const bool is_candidate_leader =
        bid != ExecImage::kNoBlock && img.blocks[bid].leader == w &&
        img.blocks[bid].num_instrs >= 2;
    if (is_candidate_leader) {
      EXPECT_EQ(tier->recs[w].handler, kHTraceCount);
      EXPECT_EQ(tier->blocks[bid].orig_handler, img.recs[w].handler);
    } else {
      // Non-leader (and single-instruction-block) records are untouched.
      EXPECT_EQ(memcmp(&tier->recs[w], &img.recs[w], sizeof(ExecRecord)), 0);
    }
  }
  // After running, promoted leaders hold the run slot; everything else is
  // still bit-identical to the shared image.
  const auto r = s->vm->Call("main", {});
  EXPECT_TRUE(r.ok);
  EXPECT_GT(tier->stats.promoted_blocks, 0u);
  for (size_t w = 0; w < img.recs.size(); ++w) {
    const uint32_t bid = img.block_of[w];
    if (bid != ExecImage::kNoBlock && img.blocks[bid].leader == w &&
        tier->blocks[bid].promoted) {
      EXPECT_EQ(tier->recs[w].handler, kHTraceRun);
      const TraceBlock& tb = tier->blocks[bid];
      // The compiled region covers at least the whole root block (it may
      // continue through inlined jmps and guarded branches); the peephole
      // fuses adjacent ops, so the op list can be shorter than the
      // instruction count but never longer than it plus one synthetic exit.
      EXPECT_GE(tb.num_instrs, img.blocks[bid].num_instrs);
      EXPECT_GE(tb.ops.size(), 1u);
      EXPECT_LE(tb.ops.size(), tb.num_instrs + 1u);
      // Every op carries an image handler id (base or fused) or a
      // trace-only pseudo handler — never the patch slots themselves.
      for (const ExecRecord& op : tb.ops) {
        EXPECT_LT(op.handler, kTNumTraceHandlers);
        EXPECT_NE(op.handler, kHTraceCount);
        EXPECT_NE(op.handler, kHTraceRun);
      }
    }
  }
}

TEST(BlockMetadata, PromotionUnderRunParallelWavesStaysIdentical) {
  // Several threads share one trace Vm: promotion flips handler slots
  // while other threads are mid-program between waves. Wave accounting and
  // per-thread results must still match the reference exactly, and the
  // SHARED image must stay pristine (promotion only writes the Vm-private
  // copy).
  VmOptions base;
  base.num_cores = 3;
  base.quantum = 2000;
  DiagEngine d1, d2;
  VmOptions ro = base;
  ro.engine = VmEngine::kRef;
  VmOptions to = base;
  to.engine = VmEngine::kTrace;
  to.trace_threshold = 16;  // promote mid-run, not instantly
  auto ref = MakeSession(kBlocky, BuildPreset::kOurMpx, &d1, ro);
  auto trace = MakeSession(kBlocky, BuildPreset::kOurMpx, &d2, to);
  ASSERT_NE(ref, nullptr) << d1.ToString();
  ASSERT_NE(trace, nullptr) << d2.ToString();
  std::vector<Vm::ThreadSpec> specs(5, {"main", {}});
  const auto r = ref->vm->RunParallel(specs);
  const auto t = trace->vm->RunParallel(specs);
  EXPECT_EQ(r.ok, t.ok);
  EXPECT_EQ(r.wall_cycles, t.wall_cycles);
  ASSERT_EQ(r.per_thread.size(), t.per_thread.size());
  for (size_t i = 0; i < r.per_thread.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectSameResult(r.per_thread[i], t.per_thread[i]);
  }
  ExpectSameStats(*ref->vm, *trace->vm);
  const TraceTier* tier = trace->vm->trace_tier();
  ASSERT_NE(tier, nullptr);
  EXPECT_GT(tier->stats.promoted_blocks, 0u);
  for (const ExecRecord& rec : trace->compiled->prog->exec_image->recs) {
    ASSERT_LT(rec.handler, kHTraceCount);  // shared image untouched
  }
}

// ---- satellite: the reference engine's block profiler ----

TEST(BlockProfile, EntryCountsAccountForEveryInstruction) {
  // In a fault-free run every executed instruction belongs to exactly one
  // block entry (jump targets are always leaders, so control never enters
  // a block mid-way): total instructions must equal the entry-weighted sum
  // of block lengths. This is the invariant the bench's --block-histogram
  // report builds on.
  std::vector<uint64_t> profile;
  VmOptions o = EngineOpts(VmEngine::kRef);
  o.block_profile = &profile;
  DiagEngine d;
  auto s = MakeSession(kBlocky, BuildPreset::kOurMpx, &d, o);
  ASSERT_NE(s, nullptr) << d.ToString();
  const ExecImage& img = *s->compiled->prog->exec_image;
  ASSERT_EQ(profile.size(), img.blocks.size());
  const auto r = s->vm->Call("main", {});
  ASSERT_TRUE(r.ok) << r.fault_msg;
  uint64_t weighted = 0;
  uint64_t entries = 0;
  for (size_t bid = 0; bid < profile.size(); ++bid) {
    weighted += profile[bid] * img.blocks[bid].num_instrs;
    entries += profile[bid];
  }
  EXPECT_GT(entries, 0u);
  EXPECT_EQ(weighted, r.instrs);
}

// ---- ExecImage construction ----

TEST(ExecImage, SharedAcrossVmsOfOneProgram) {
  DiagEngine d;
  auto s = MakeSession("int main() { return 7; }", BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->compiled->prog->exec_image, nullptr);
  const ExecImage* img = s->compiled->prog->exec_image.get();
  EXPECT_EQ(img->recs.size(), s->compiled->prog->decoded.size());
  TrustedLib tlib2;
  Vm second(s->compiled->prog.get(), &tlib2, EngineOpts(VmEngine::kFast));
  EXPECT_EQ(s->compiled->prog->exec_image.get(), img);  // no rebuild
}

TEST(ExecImage, RefEngineDoesNotBuildOne)
{
  DiagEngine d;
  auto s = MakeSession("int main() { return 7; }", BuildPreset::kOurMpx, &d,
                       EngineOpts(VmEngine::kRef));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->compiled->prog->exec_image, nullptr);
  EXPECT_EQ(s->vm->Call("main", {}).ret, 7u);
}

}  // namespace
}  // namespace confllvm
