// Mutation-fuzz harness for the untrusted-binary surface (the robustness
// half of the paper's §5.2/§6 "distrust the compiler" posture): every
// corrupted object file — a bit-flipped cache entry, a truncated --emit-bin,
// a hostile producer — must be rejected with a clean diagnostic by
// DeserializeBinary, LoadBinary, or LinkBinaries. Never a crash, hang, or
// out-of-bounds access; CI runs this harness under ASan+UBSan to make
// "clean" mean memory-clean, not merely no-segfault.
//
// The corpus is real compiler output (several sources × instrumentation
// presets), mutated by a seeded deterministic Rng: bit flips, byte
// overwrites, truncations, and appends. Mutants that still deserialize are
// pushed all the way through load, a short reference-engine execution, and
// a link against a pristine module.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/driver/confcc.h"
#include "src/isa/binary.h"
#include "src/isa/link.h"
#include "src/runtime/loader.h"
#include "src/runtime/trusted.h"
#include "src/support/rng.h"
#include "src/vm/vm.h"

namespace confllvm {
namespace {

const char* kLeafSource =
    "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) "
    "{ s = s + i; } return s; }\n";

const char* kRichSource = R"(
  int g_scale = 3;
  void *pub_malloc(int n);
  void pub_free(void *p);
  int scale(int x) { return x * g_scale; }
  int main() {
    int *h = (int*)pub_malloc(2 * sizeof(int));
    h[0] = scale(5);
    private int secret = 7;
    private int folded = secret + h[0];
    h[1] = 4;
    int r = h[0] + h[1];
    pub_free((void*)h);
    return r;
  }
)";

struct CorpusEntry {
  BuildPreset preset;
  std::vector<uint8_t> blob;  // pristine serialized Binary
};

std::vector<CorpusEntry> BuildCorpus() {
  std::vector<CorpusEntry> corpus;
  for (const char* src : {kLeafSource, kRichSource}) {
    for (const BuildPreset p :
         {BuildPreset::kBase, BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
      DiagEngine diags;
      auto cp = Compile(src, BuildConfig::For(p), &diags);
      EXPECT_NE(cp, nullptr) << PresetName(p) << ": " << diags.ToString();
      if (cp != nullptr) {
        corpus.push_back({p, SerializeBinary(cp->prog->binary)});
      }
    }
  }
  return corpus;
}

std::vector<uint8_t> Mutate(const std::vector<uint8_t>& blob, Rng* rng) {
  std::vector<uint8_t> m = blob;
  switch (rng->Below(4)) {
    case 0: {  // flip 1-8 random bits
      const uint64_t flips = 1 + rng->Below(8);
      for (uint64_t i = 0; i < flips && !m.empty(); ++i) {
        m[rng->Below(m.size())] ^= static_cast<uint8_t>(1u << rng->Below(8));
      }
      break;
    }
    case 1: {  // overwrite a random run with random bytes
      if (!m.empty()) {
        const size_t at = rng->Below(m.size());
        const size_t len = 1 + rng->Below(16);
        for (size_t i = at; i < m.size() && i < at + len; ++i) {
          m[i] = static_cast<uint8_t>(rng->Next());
        }
      }
      break;
    }
    case 2:  // truncate
      m.resize(rng->Below(m.size() + 1));
      break;
    default: {  // append garbage
      const size_t extra = 1 + rng->Below(32);
      for (size_t i = 0; i < extra; ++i) {
        m.push_back(static_cast<uint8_t>(rng->Next()));
      }
      break;
    }
  }
  return m;
}

// One mutant, end to end: deserialize; if the encoding survives, load; if
// the load survives, execute briefly on the reference engine and link it
// against a pristine module. Every stage must either succeed or fail with a
// diagnostic — the harness itself only asserts the "no crash / no silent
// null" contract, the sanitizers assert memory cleanliness.
void RunMutant(const std::vector<uint8_t>& mutant, BuildPreset preset,
               const Binary& pristine) {
  Binary bin;
  if (!DeserializeBinary(mutant, &bin)) {
    return;  // rejected at the encoding layer: the common, correct outcome
  }
  const BuildConfig config = BuildConfig::For(preset);

  // The linker sees module-shaped inputs before any load runs.
  {
    DiagEngine ldiags;
    Binary copy = bin;
    auto linked = LinkBinaries({&pristine, &copy}, &ldiags);
    EXPECT_TRUE(linked != nullptr || ldiags.HasErrors());
  }

  DiagEngine diags;
  auto prog = LoadBinary(std::move(bin), config.load, &diags);
  if (prog == nullptr) {
    // A structurally valid but semantically corrupt binary must say why.
    EXPECT_TRUE(diags.HasErrors());
    return;
  }
  // Loaded: a short bounded run must fault or finish, never escape. The
  // reference engine skips the per-mutant ExecImage/flat-memory build the
  // fast tiers pay.
  TrustedLib tlib({config.alloc_policy});
  VmOptions opts;
  opts.engine = VmEngine::kRef;
  opts.max_instrs = 5000;
  Vm vm(prog.get(), &tlib, opts);
  (void)vm.Call("main", {});
}

TEST(BinaryFuzz, MutatedBlobsNeverCrashTheDecoderLoaderLinkerOrVm) {
  const std::vector<CorpusEntry> corpus = BuildCorpus();
  ASSERT_FALSE(corpus.empty());
  Rng rng(0x5eedf00d);
  for (const CorpusEntry& entry : corpus) {
    Binary pristine;
    ASSERT_TRUE(DeserializeBinary(entry.blob, &pristine));
    for (int round = 0; round < 200; ++round) {
      SCOPED_TRACE(std::string(PresetName(entry.preset)) + " round " +
                   std::to_string(round));
      RunMutant(Mutate(entry.blob, &rng), entry.preset, pristine);
    }
  }
}

// Targeted structural corruptions: take the *decoded* pristine Binary and
// break exactly one semantic invariant the encoding cannot express. Each
// must be rejected by the loader with a "corrupt binary" diagnostic — these
// are the out-of-bounds patch vectors the fuzz loop only hits by luck.
TEST(BinaryFuzz, LoaderRejectsEverySemanticInvariantBreak) {
  DiagEngine cdiags;
  auto cp =
      Compile(kRichSource, BuildConfig::For(BuildPreset::kOurMpx), &cdiags);
  ASSERT_NE(cp, nullptr) << cdiags.ToString();
  const Binary& good = cp->prog->binary;
  ASSERT_FALSE(good.functions.empty());
  ASSERT_FALSE(good.globals.empty());
  ASSERT_FALSE(good.global_refs.empty());

  const auto expect_corrupt = [&](Binary bad, const char* what) {
    SCOPED_TRACE(what);
    DiagEngine diags;
    EXPECT_EQ(LoadBinary(std::move(bad),
                         BuildConfig::For(BuildPreset::kOurMpx).load, &diags),
              nullptr);
    EXPECT_TRUE(diags.Contains("corrupt binary")) << diags.ToString();
  };

  {
    Binary b = good;
    b.functions[0].entry_word = static_cast<uint32_t>(b.code.size());
    expect_corrupt(std::move(b), "function entry outside code");
  }
  {
    Binary b = good;
    b.globals[0].size = ~uint64_t{0};  // would overflow the globals cursor
    expect_corrupt(std::move(b), "global size overflow");
  }
  {
    Binary b = good;
    b.globals[0].init.resize(b.globals[0].size + 1);
    expect_corrupt(std::move(b), "initializer larger than global");
  }
  {
    Binary b = good;
    b.globals[0].relocs.push_back({b.globals[0].size, 0});
    expect_corrupt(std::move(b), "relocation outside global");
  }
  {
    Binary b = good;
    b.global_refs[0].global_idx = static_cast<uint32_t>(b.globals.size());
    expect_corrupt(std::move(b), "global ref outside table");
  }
  {
    Binary b = good;
    b.global_refs[0].word = static_cast<uint32_t>(b.code.size());
    expect_corrupt(std::move(b), "global ref outside code");
  }
  {
    Binary b = good;
    b.func_refs.push_back({0, static_cast<uint32_t>(b.functions.size())});
    expect_corrupt(std::move(b), "func ref outside table");
  }
  {
    Binary b = good;
    b.magic_sites.push_back(
        {static_cast<uint32_t>(b.code.size()), false, 0, false});
    expect_corrupt(std::move(b), "magic site outside code");
  }
  {
    Binary b = good;
    ASSERT_FALSE(b.imports.empty());
    b.imports[0].num_params = 4;
    b.imports[0].params.clear();
    expect_corrupt(std::move(b), "import param count out-reads table");
  }
}

}  // namespace
}  // namespace confllvm
