// Runtime-layer tests: trusted library semantics, crypto round trips,
// channel behaviour, loader limits, and live control-flow-hijack attempts
// stopped by the taint-aware CFI at runtime (paper §4).
#include <gtest/gtest.h>

#include "src/driver/confcc.h"
#include "src/isa/layout.h"

namespace confllvm {
namespace {

TEST(TrustedRuntime, EncryptDecryptRoundTrip) {
  const char* src = R"(
    void decrypt(char *ct, private char *pt, int n);
    int encrypt(private char *pt, char *ct, int n);
    int send(int fd, char *buf, int n);
    int recv(int fd, char *buf, int n);
    int roundtrip() {
      char wire[32];
      int n = recv(0, wire, 32);
      private char clear[32];
      decrypt(wire, clear, n);
      char back[32];
      encrypt(clear, back, n);
      send(1, back, n);
      return n;
    })";
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  // Push ciphertext of "attack at dawn!" by encrypting host-side with the
  // same xor key.
  std::string msg = "attack at dawn!";
  std::string ct = msg;
  for (size_t i = 0; i < ct.size(); ++i) {
    ct[i] ^= static_cast<char>(s->tlib->crypto_key() >> ((i % 8) * 8));
  }
  s->tlib->PushRx(0, ct);
  auto r = s->vm->Call("roundtrip", {});
  ASSERT_TRUE(r.ok) << r.fault_msg;
  EXPECT_EQ(r.ret, msg.size());
  // decrypt->encrypt with the same key: the wire sees the ciphertext again,
  // never the plaintext.
  EXPECT_EQ(s->tlib->SentBytes(1), ct);
  EXPECT_FALSE(s->tlib->PublicOutputContains("attack at dawn"));
}

TEST(TrustedRuntime, RecvDrainsQueueInOrder) {
  const char* src = R"(
    int recv(int fd, char *buf, int n);
    int drain() {
      char b[16];
      int total = 0;
      int n = recv(5, b, 16);
      while (n > 0) {
        total = total + (int)b[0];
        n = recv(5, b, 16);
      }
      return total;
    })";
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kOurSeg, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  s->tlib->PushRx(5, "A");
  s->tlib->PushRx(5, "B");
  s->tlib->PushRx(5, "C");
  auto r = s->vm->Call("drain", {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.ret, static_cast<uint64_t>('A' + 'B' + 'C'));
}

TEST(TrustedRuntime, FileMissingReturnsMinusOne) {
  const char* src = R"(
    int file_size(char *name);
    int probe() {
      char n[8];
      n[0] = 'x'; n[1] = 0;
      return file_size(n) + 2;
    })";
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->vm->Call("probe", {}).ret, 1u);  // -1 + 2
}

TEST(TrustedRuntime, PrivateHeapPointersRejectedAtPublicSinks) {
  const char* src = R"(
    private void *prv_malloc(int n);
    int send(int fd, char *buf, int n);
    int try_leak() {
      private char *p = (private char*)prv_malloc(32);
      for (int i = 0; i < 32; i = i + 1) { p[i] = 'S'; }
      send(0, (char*)(int)p, 32);
      return 0;
    })";
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  auto r = s->vm->Call("try_leak", {});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault, VmFault::kTrustedCheck);
  EXPECT_FALSE(s->tlib->PublicOutputContains("SSSS"));
}

TEST(Loader, RejectsOversizedGlobals) {
  // The globals area is 16 MiB per region; a 32 MiB global must be refused.
  const char* src = "char huge[33554432]; int main() { return 0; }";
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &d);
  EXPECT_EQ(s, nullptr);
  EXPECT_TRUE(d.Contains("globals exceed")) << d.ToString();
}

// ---- runtime control-flow hijack (the heart of §4) ----

const char* kHijack = R"(
int send(int fd, char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);

// Never called legitimately: exfiltrates whatever it can reach.
int gadget(int x) {
  char out[16];
  for (int i = 0; i < 16; i = i + 1) { out[i] = (char)(65 + i); }
  send(0, out, 16);
  return 99;
}

int dispatch(int target) {
  int (*f)(int) = (int (*)(int))target;
  return f(7);
}
)";

TEST(CfiRuntime, IndirectCallToValidEntrySucceeds) {
  DiagEngine d;
  auto s = MakeSession(kHijack, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  const uint64_t entry =
      CodeAddr(s->compiled->prog->EntryWordOf("gadget"));
  auto r = s->vm->Call("dispatch", {entry});
  // gadget's signature taints match dispatch's icall site (int->int), so the
  // CFI check passes: this is a *valid* target.
  EXPECT_TRUE(r.ok) << r.fault_msg;
  EXPECT_EQ(r.ret, 99u);
}

TEST(CfiRuntime, IndirectCallIntoFunctionBodyTrapsUnderCfi) {
  DiagEngine d;
  auto s = MakeSession(kHijack, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  // Jump 3 words past the entry — a classic gadget address. The word before
  // it is not an MCall magic, so the check must trap.
  const uint64_t mid = CodeAddr(s->compiled->prog->EntryWordOf("gadget") + 3);
  auto r = s->vm->Call("dispatch", {mid});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault, VmFault::kCfiTrap) << FaultName(r.fault);
}

TEST(CfiRuntime, IndirectCallToDataTrapsOrFaults) {
  DiagEngine d;
  auto s = MakeSession(kHijack, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  // Point the "function pointer" into U's public heap (non-code): must not
  // execute attacker data under any circumstances.
  const uint64_t heap = s->compiled->prog->map.pub_heap + 64;
  auto r = s->vm->Call("dispatch", {heap});
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.fault == VmFault::kCfiTrap || r.fault == VmFault::kBadJump)
      << FaultName(r.fault);
}

TEST(CfiRuntime, WithoutCfiTheHijackLandsAnywhere) {
  // Under Base the same mid-function jump is accepted by the hardware —
  // precisely the gap the taint-aware CFI closes.
  DiagEngine d;
  auto s = MakeSession(kHijack, BuildPreset::kBase, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  const uint64_t mid = CodeAddr(s->compiled->prog->EntryWordOf("gadget") + 3);
  auto r = s->vm->Call("dispatch", {mid});
  // Whatever happens (it may fault on garbage, or run), it is NOT a CFI
  // trap — Base has no such defense.
  EXPECT_NE(r.fault, VmFault::kCfiTrap);
}

TEST(CfiRuntime, ReturnAddressOverwriteTrapsUnderCfi) {
  // Smash the saved return address through an in-frame pointer; the CFI
  // return sequence must refuse to transfer there.
  const char* src = R"(
    int smash(int off, int fake) {
      char buf[8];
      int *ra = (int*)(buf + off);  // past the frame: the saved RA area
      *ra = fake;
      return 1;
    })";
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &d);
  ASSERT_NE(s, nullptr) << d.ToString();
  // Aim the return at mid-code (not a valid MRet site). The exact offset of
  // the saved RA depends on the frame layout, so sweep a few.
  const uint64_t mid = CodeAddr(s->compiled->prog->EntryWordOf("smash") + 2);
  bool trapped = false;
  for (uint64_t off = 8; off <= 48; off += 8) {
    auto r = s->vm->Call("smash", {off, mid});
    if (!r.ok && r.fault == VmFault::kCfiTrap) {
      trapped = true;
    }
    ASSERT_NE(r.fault, VmFault::kUnmapped) << r.fault_msg;
  }
  EXPECT_TRUE(trapped) << "no offset reached the saved return address";
}

}  // namespace
}  // namespace confllvm
