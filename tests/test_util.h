// Shared compile-run-compare helpers for the differential test suites.
//
// The engine-differential suites (vm_engine, workloads, link, disk_cache,
// ct_preset) all follow the same shape: compile one source under a preset,
// run it on two or three execution engines, and demand bit-identical
// observable behaviour — CallResult, every VmStats counter, and the cache
// model's hit/miss totals. This header holds that shape once so every suite
// compares the SAME set of observables; a counter added here tightens all
// of them at once.
#ifndef CONFLLVM_TESTS_TEST_UTIL_H_
#define CONFLLVM_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/workloads.h"
#include "src/driver/artifact_cache.h"
#include "src/driver/confcc.h"
#include "src/isa/isa.h"
#include "src/runtime/loader.h"
#include "src/verifier/verifier.h"

namespace confllvm {
namespace testutil {

// Source text for the named example application workload.
inline const char* AppSource(const std::string& name) {
  if (name == "nginx") return workloads::kNginx;
  if (name == "ldap") return workloads::kLdap;
  if (name == "privado") return workloads::kPrivado;
  return workloads::kMerkle;
}

// Runs ConfVerify over the session's compiled program and expects a clean
// result. Compile() does not verify by default, so suites that promise
// "verifier-checked" call this explicitly on every instrumented binary.
inline void ExpectVerifies(const Session& s, const std::string& label) {
  const VerifyResult r = Verify(*s.compiled->prog);
  EXPECT_TRUE(r.ok) << label << "\n" << r.ErrorText();
}

// Re-decodes after mutating code words (mirrors what an attacker-supplied
// binary would look like). The forgery suites patch instructions into a
// loaded program's code image and re-verify; the decoded cache must follow.
inline void Redecode(LoadedProgram* prog) {
  prog->decoded.assign(prog->binary.code.size(), {});
  size_t idx = 0;
  while (idx < prog->binary.code.size()) {
    uint32_t consumed = 1;
    auto in = Decode(prog->binary.code, idx, &consumed);
    if (in.has_value()) {
      prog->decoded[idx] = {std::move(in), consumed};
      for (uint32_t k = 1; k < consumed; ++k) {
        prog->decoded[idx + k] = {std::nullopt, 1};
      }
      idx += consumed;
    } else {
      prog->decoded[idx] = {std::nullopt, 1};
      ++idx;
    }
  }
}

// Promotion threshold used by the differential trace sessions: low enough
// that any loop body promotes within the first iterations, so the tests
// exercise the counting path, the promotion swap, AND the whole-block path.
constexpr uint64_t kTestTraceThreshold = 2;

inline VmOptions EngineOpts(VmEngine e) {
  VmOptions o;
  o.engine = e;
  if (e == VmEngine::kTrace) {
    o.trace_threshold = kTestTraceThreshold;
  }
  return o;
}

inline void ExpectSameResult(const Vm::CallResult& ref,
                             const Vm::CallResult& fast) {
  EXPECT_EQ(ref.ok, fast.ok);
  EXPECT_EQ(ref.fault, fast.fault)
      << FaultName(ref.fault) << " vs " << FaultName(fast.fault);
  EXPECT_EQ(ref.fault_msg, fast.fault_msg);
  EXPECT_EQ(ref.fault_pc, fast.fault_pc);
  EXPECT_EQ(ref.ret, fast.ret);
  EXPECT_EQ(ref.cycles, fast.cycles);
  EXPECT_EQ(ref.instrs, fast.instrs);
}

inline void ExpectSameStats(const Vm& ref, const Vm& fast) {
  const VmStats& a = ref.stats();
  const VmStats& b = fast.stats();
  EXPECT_EQ(a.instrs, b.instrs);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.check_instrs, b.check_instrs);
  EXPECT_EQ(a.check_cycles, b.check_cycles);
  EXPECT_EQ(a.cfi_instrs, b.cfi_instrs);
  EXPECT_EQ(a.trusted_cycles, b.trusted_cycles);
  EXPECT_EQ(a.trusted_calls, b.trusted_calls);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.cache_miss_cycles, b.cache_miss_cycles);
  EXPECT_EQ(ref.cache().hits(), fast.cache().hits());
  EXPECT_EQ(ref.cache().misses(), fast.cache().misses());
}

// Compiles `src` once per engine (through a shared cache so the binaries are
// byte-identical) and returns the three sessions.
struct EnginePair {
  std::unique_ptr<Session> ref;
  std::unique_ptr<Session> fast;
  std::unique_ptr<Session> trace;
};

inline EnginePair MakePair(const std::string& src, BuildPreset preset,
                           ArtifactCache* cache = nullptr) {
  EnginePair p;
  DiagEngine d1;
  DiagEngine d2;
  DiagEngine d3;
  const BuildConfig config = BuildConfig::For(preset);
  p.ref = MakeSessionFor(Compile(src, config, &d1, nullptr, cache),
                         EngineOpts(VmEngine::kRef));
  p.fast = MakeSessionFor(Compile(src, config, &d2, nullptr, cache),
                          EngineOpts(VmEngine::kFast));
  p.trace = MakeSessionFor(Compile(src, config, &d3, nullptr, cache),
                           EngineOpts(VmEngine::kTrace));
  EXPECT_NE(p.ref, nullptr) << d1.ToString();
  EXPECT_NE(p.fast, nullptr) << d2.ToString();
  EXPECT_NE(p.trace, nullptr) << d3.ToString();
  return p;
}

// Runs the same call on all three engines and checks full observational
// equality of fast AND trace against the reference.
inline void DiffCall(EnginePair* p, const std::string& fn,
                     const std::vector<uint64_t>& args) {
  const auto ref = p->ref->vm->Call(fn, args);
  {
    SCOPED_TRACE("engine=fast");
    const auto fast = p->fast->vm->Call(fn, args);
    ExpectSameResult(ref, fast);
    ExpectSameStats(*p->ref->vm, *p->fast->vm);
  }
  {
    SCOPED_TRACE("engine=trace");
    const auto trace = p->trace->vm->Call(fn, args);
    ExpectSameResult(ref, trace);
    ExpectSameStats(*p->ref->vm, *p->trace->vm);
  }
}

}  // namespace testutil
}  // namespace confllvm

#endif  // CONFLLVM_TESTS_TEST_UTIL_H_
