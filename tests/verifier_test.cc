// ConfVerify tests: every binary ConfLLVM produces (full instrumentation)
// verifies; targeted mutations — dropped checks, flipped taints, retargeted
// stores, smuggled instructions — are rejected (paper §5.2: ConfVerify
// guards against compiler bugs; it caught real ones during development).
#include <gtest/gtest.h>

#include "src/driver/confcc.h"
#include "src/verifier/verifier.h"

namespace confllvm {
namespace {

const char* kPrograms[] = {
    // Simple arithmetic.
    "int main() { int s = 0; for (int i = 0; i < 8; i = i + 1) { s = s + i; } "
    "return s; }",
    // Private data + T calls + casts.
    R"(
    int send(int fd, char *buf, int n);
    void read_passwd(char *uname, private char *pass, int n);
    int encrypt(private char *pt, char *ct, int n);
    int main() {
      char uname[8];
      uname[0] = 'a'; uname[1] = 0;
      private char pw[32];
      read_passwd(uname, pw, 32);
      char out[32];
      encrypt(pw, out, 32);
      send(1, out, 32);
      return 0;
    })",
    // Indirect calls.
    R"(
    int f1(int x) { return x + 1; }
    int f2(int x) { return x + 2; }
    int main() {
      int (*f)(int) = f1;
      int a = f(1);
      f = f2;
      return a + f(1);
    })",
    // Private pointer chasing through the private heap.
    R"(
    struct node { private int *v; struct node *next; };
    private void *prv_malloc(int n);
    void *pub_malloc(int n);
    int deliver(private int sum) {
      private int hold[1];
      hold[0] = sum;
      return 3;
    }
    int main() {
      struct node *head = NULL;
      for (int i = 0; i < 5; i = i + 1) {
        struct node *n = (struct node*)pub_malloc(sizeof(struct node));
        n->v = (private int*)prv_malloc(sizeof(int));
        *(n->v) = i;
        n->next = head;
        head = n;
      }
      private int s = 0;
      struct node *it = head;
      while (it != NULL) {
        s = s + *(it->v);
        it = it->next;
      }
      return deliver(s);
    })",
};

class VerifierAccepts
    : public ::testing::TestWithParam<std::tuple<int, BuildPreset>> {};

INSTANTIATE_TEST_SUITE_P(
    Programs, VerifierAccepts,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values(BuildPreset::kOurMpx, BuildPreset::kOurSeg)));

TEST_P(VerifierAccepts, CompilerOutputVerifies) {
  const auto [prog_idx, preset] = GetParam();
  DiagEngine diags;
  auto s = MakeSession(kPrograms[prog_idx], preset, &diags);
  ASSERT_NE(s, nullptr) << diags.ToString();
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_TRUE(r.ok) << r.ErrorText();
  EXPECT_GT(r.procedures, 0u);
}

std::unique_ptr<Session> BuildMpx(const char* src) {
  DiagEngine diags;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &diags);
  EXPECT_NE(s, nullptr) << diags.ToString();
  return s;
}

// Re-decodes after mutating code words (mirrors what an attacker-supplied
// binary would look like).
void Redecode(LoadedProgram* prog) {
  prog->decoded.assign(prog->binary.code.size(), {});
  size_t idx = 0;
  while (idx < prog->binary.code.size()) {
    uint32_t consumed = 1;
    auto in = Decode(prog->binary.code, idx, &consumed);
    if (in.has_value()) {
      prog->decoded[idx] = {std::move(in), consumed};
      for (uint32_t k = 1; k < consumed; ++k) {
        prog->decoded[idx + k] = {std::nullopt, 1};
      }
      idx += consumed;
    } else {
      prog->decoded[idx] = {std::nullopt, 1};
      ++idx;
    }
  }
}

const char* kPrivateStoreProgram = R"(
    int deliver(private int x) {
      private int hold[1];
      private int *p = hold;
      *p = x;
      return 5;
    }
    int main() {
      private int v = 37;
      return deliver(v);
    })";

TEST(VerifierRejects, DroppedBoundsCheck) {
  auto s = BuildMpx(kPrivateStoreProgram);
  ASSERT_TRUE(Verify(*s->compiled->prog).ok);
  // Replace every bndcl/bndcu with nop and re-verify.
  Binary& bin = s->compiled->prog->binary;
  int dropped = 0;
  for (size_t w = 0; w < bin.code.size(); ++w) {
    uint32_t consumed = 1;
    auto mi = Decode(bin.code, w, &consumed);
    if (mi.has_value() &&
        (mi->op == Op::kBndclR || mi->op == Op::kBndcuR || mi->op == Op::kBndclM ||
         mi->op == Op::kBndcuM)) {
      std::vector<uint64_t> repl;
      MInstr nop{};
      nop.op = Op::kNop;
      Encode(nop, &repl);
      bin.code[w] = repl[0];
      ++dropped;
    }
    w += consumed - 1;
  }
  ASSERT_GT(dropped, 0);
  Redecode(s->compiled->prog.get());
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.ErrorText().find("without a dominating bounds check"), std::string::npos)
      << r.ErrorText();
}

TEST(VerifierRejects, FlippedEntryTaintBits) {
  // The private value reaches deliver() from a private-returning call, so
  // the verifier's own dataflow sees r1 as H at the callsite; claiming the
  // parameter public in deliver's entry magic must then fail the call-taint
  // check.
  auto s = BuildMpx(R"(
    private int secret() { return 7; }
    int deliver(private int x) {
      private int hold[1];
      hold[0] = x;
      return 5;
    }
    int main() {
      return deliver(secret());
    })");
  ASSERT_TRUE(Verify(*s->compiled->prog).ok);
  Binary& bin = s->compiled->prog->binary;
  const int fi = bin.FunctionIndex("deliver");
  ASSERT_GE(fi, 0);
  const uint32_t magic_word = bin.functions[fi].entry_word - 1;
  uint64_t w = bin.code[magic_word];
  ASSERT_TRUE(HasMagicShape(w));
  bin.code[magic_word] = MakeMagicWord(MagicPrefixOf(w), MagicTaintsOf(w) & ~1u);
  Redecode(s->compiled->prog.get());
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok) << "flipped taint bits must not verify";
  EXPECT_NE(r.ErrorText().find("taint exceeds"), std::string::npos) << r.ErrorText();
}

TEST(VerifierRejects, RetargetedStoreToPublicRegion) {
  auto s = BuildMpx(kPrivateStoreProgram);
  Binary& bin = s->compiled->prog->binary;
  // Flip every private-region (bnd1) check to bnd0: the private store now
  // claims a public region — a classic leak-the-secret rewrite.
  int flipped = 0;
  for (size_t w = 0; w < bin.code.size(); ++w) {
    uint32_t consumed = 1;
    auto mi = Decode(bin.code, w, &consumed);
    if (mi.has_value() && mi->bnd == 1 &&
        (mi->op == Op::kBndclR || mi->op == Op::kBndcuR || mi->op == Op::kBndclM ||
         mi->op == Op::kBndcuM)) {
      MInstr m = *mi;
      m.bnd = 0;
      std::vector<uint64_t> repl;
      Encode(m, &repl);
      bin.code[w] = repl[0];
      ++flipped;
    }
    w += consumed - 1;
  }
  ASSERT_GT(flipped, 0);
  Redecode(s->compiled->prog.get());
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.ErrorText().find("private value stored to public"), std::string::npos)
      << r.ErrorText();
}

TEST(VerifierRejects, PlainRetSmuggledIn) {
  auto s = BuildMpx("int main() { return 1; }");
  Binary& bin = s->compiled->prog->binary;
  // Overwrite the CFI return sequence's first instruction with a plain ret.
  bool patched = false;
  for (size_t w = 0; w < bin.code.size() && !patched; ++w) {
    uint32_t consumed = 1;
    auto mi = Decode(bin.code, w, &consumed);
    if (mi.has_value() && mi->op == Op::kJmpReg) {
      MInstr r{};
      r.op = Op::kRet;
      std::vector<uint64_t> repl;
      Encode(r, &repl);
      bin.code[w] = repl[0];
      patched = true;
    }
    if (mi.has_value()) {
      w += consumed - 1;
    }
  }
  ASSERT_TRUE(patched);
  Redecode(s->compiled->prog.get());
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.ErrorText().find("plain ret"), std::string::npos) << r.ErrorText();
}

TEST(VerifierRejects, UninstrumentedBinary) {
  DiagEngine diags;
  auto s = MakeSession("int main() { return 1; }", BuildPreset::kBase, &diags);
  ASSERT_NE(s, nullptr);
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok);
}

TEST(VerifierRejects, BranchOnPrivateValue) {
  // Hand-mutate: replace a public-branch condition with a private register.
  // Build a program where r0 after a private-returning call feeds a branch.
  auto s = BuildMpx(R"(
    private int secret() { return 99; }
    int deliver(private int x) { private int h[1]; h[0] = x; return 4; }
    int main() {
      private int v = secret();
      return deliver(v);
    })");
  Binary& bin = s->compiled->prog->binary;
  // In main, after `call secret` the return register r0 is private. Insert
  // a jnz on r0 by replacing the mov that consumes it.
  bool patched = false;
  for (size_t w = 0; w < bin.code.size() && !patched; ++w) {
    uint32_t consumed = 1;
    auto mi = Decode(bin.code, w, &consumed);
    if (mi.has_value() && mi->op == Op::kMov && mi->rs1 == kRegRet) {
      MInstr j{};
      j.op = Op::kJnz;
      j.rd = kRegRet;
      j.imm = static_cast<int32_t>(w);  // self-loop target: in-procedure
      std::vector<uint64_t> repl;
      Encode(j, &repl);
      bin.code[w] = repl[0];
      patched = true;
    }
    if (mi.has_value()) {
      w += consumed - 1;
    }
  }
  ASSERT_TRUE(patched);
  Redecode(s->compiled->prog.get());
  VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.ErrorText().find("branch on a private value"), std::string::npos)
      << r.ErrorText();
}

}  // namespace
}  // namespace confllvm
