// Every workload compiles, runs, verifies (instrumented configs), and
// produces the same checksum under every configuration — instrumentation
// must never change program results (paper §7: same outputs, different
// cost).
#include <gtest/gtest.h>

#include "bench/workloads.h"
#include "src/driver/artifact_cache.h"
#include "src/driver/confcc.h"
#include "src/driver/pipeline.h"
#include "src/verifier/verifier.h"
#include "tests/test_util.h"

namespace confllvm {
namespace {

using testutil::AppSource;
using workloads::kNumSpecKernels;
using workloads::kSpecKernels;

constexpr BuildPreset kConfigs[] = {
    BuildPreset::kBase,   BuildPreset::kBaseOA, BuildPreset::kOurBare,
    BuildPreset::kOurCFI, BuildPreset::kOurMpx, BuildPreset::kOurSeg,
};

class SpecKernels : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(All, SpecKernels, ::testing::Range(0, kNumSpecKernels),
                         [](const auto& info) {
                           return kSpecKernels[info.param].name;
                         });

TEST_P(SpecKernels, SameChecksumAcrossAllConfigs) {
  const auto& kernel = kSpecKernels[GetParam()];
  uint64_t base_result = 0;
  bool first = true;
  for (BuildPreset preset : kConfigs) {
    DiagEngine diags;
    auto s = MakeSession(kernel.source, preset, &diags);
    ASSERT_NE(s, nullptr) << kernel.name << " " << PresetName(preset) << "\n"
                          << diags.ToString();
    auto r = s->vm->Call("main", {});
    ASSERT_TRUE(r.ok) << kernel.name << " " << PresetName(preset) << " fault "
                      << FaultName(r.fault) << ": " << r.fault_msg;
    if (first) {
      base_result = r.ret;
      first = false;
    } else {
      EXPECT_EQ(r.ret, base_result) << kernel.name << " diverges under "
                                    << PresetName(preset);
    }
  }
}

TEST_P(SpecKernels, InstrumentedBinariesVerify) {
  const auto& kernel = kSpecKernels[GetParam()];
  for (BuildPreset preset : {BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    DiagEngine diags;
    auto s = MakeSession(kernel.source, preset, &diags);
    ASSERT_NE(s, nullptr) << diags.ToString();
    testutil::ExpectVerifies(
        *s, std::string(kernel.name) + " under " + PresetName(preset));
  }
}

TEST_P(SpecKernels, InstrumentationAddsCyclesNeverChangesOutput) {
  const auto& kernel = kSpecKernels[GetParam()];
  DiagEngine d1;
  DiagEngine d2;
  auto base = MakeSession(kernel.source, BuildPreset::kBase, &d1);
  auto mpx = MakeSession(kernel.source, BuildPreset::kOurMpx, &d2);
  ASSERT_NE(base, nullptr);
  ASSERT_NE(mpx, nullptr);
  auto rb = base->vm->Call("main", {});
  auto rm = mpx->vm->Call("main", {});
  ASSERT_TRUE(rb.ok && rm.ok);
  EXPECT_EQ(rb.ret, rm.ret);
  EXPECT_GT(rm.cycles, rb.cycles) << "MPX instrumentation must cost something";
  EXPECT_GT(mpx->vm->stats().check_instrs, 0u);
}

struct AppCase {
  const char* name;
  const char* source;
};

class Apps : public ::testing::TestWithParam<AppCase> {};
INSTANTIATE_TEST_SUITE_P(All, Apps,
                         ::testing::Values(AppCase{"nginx", nullptr},
                                           AppCase{"ldap", nullptr},
                                           AppCase{"privado", nullptr},
                                           AppCase{"merkle", nullptr}),
                         [](const auto& info) { return std::string(info.param.name); });

// The CI preset sweep with ConfVerify wired in (ROADMAP "ConfVerify in the
// sweep"): every example workload batch-compiles under all eight presets
// through the shared artifact cache, and every fully-instrumented preset
// carries a Verify stage whose result must be clean — including on cached
// rebuilds, where the front-end artifacts are restored rather than rebuilt.
TEST_P(Apps, PresetSweepVerifiesEveryInstrumentedPreset) {
  const char* src = AppSource(GetParam().name);
  ArtifactCache cache;
  const auto jobs = PresetSweepJobs(src, /*verify=*/true);
  ASSERT_EQ(jobs.size(), 8u);
  size_t verified = 0;
  for (int round = 0; round < 2; ++round) {  // cold sweep, then cached sweep
    auto outcomes = CompileBatch(jobs, /*num_workers=*/4, &cache);
    for (size_t i = 0; i < outcomes.size(); ++i) {
      SCOPED_TRACE(outcomes[i].label + (round == 0 ? " cold" : " warm"));
      ASSERT_TRUE(outcomes[i].ok) << outcomes[i].invocation->diags().ToString();
      if (jobs[i].verify) {
        ASSERT_NE(outcomes[i].invocation->verify_result, nullptr);
        EXPECT_TRUE(outcomes[i].invocation->verify_result->ok)
            << outcomes[i].invocation->verify_result->ErrorText();
        ++verified;
      }
    }
  }
  // The fully-instrumented secure presets carry ConfVerify: OurMPX and
  // OurSeg. OurCFI lacks a bounds scheme, and OurMPX-Sep intentionally puts
  // private data on the public stack (ConfVerify rightly rejects it).
  EXPECT_EQ(verified, 2u * 2u);
  // Warm rebuilds came from the cache, yet every instrumented binary was
  // re-verified above.
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST_P(Apps, RunsUnderAllConfigsAndVerifies) {
  const char* src = AppSource(GetParam().name);
  const std::string name = GetParam().name;
  for (BuildPreset preset : kConfigs) {
    DiagEngine diags;
    auto s = MakeSession(src, preset, &diags);
    ASSERT_NE(s, nullptr) << name << " " << PresetName(preset) << "\n"
                          << diags.ToString();
    if (name == "nginx") {
      s->tlib->AddFile("index.html", std::string(1024, 'x'));
      for (int i = 0; i < 4; ++i) {
        s->tlib->PushRx(0, "GET index.html\n");
      }
    }
    auto r = s->vm->Call("main", {});
    ASSERT_TRUE(r.ok) << name << " " << PresetName(preset) << " fault "
                      << FaultName(r.fault) << ": " << r.fault_msg;
    if (preset == BuildPreset::kOurMpx || preset == BuildPreset::kOurSeg) {
      VerifyResult v = Verify(*s->compiled->prog);
      EXPECT_TRUE(v.ok) << name << "\n" << v.ErrorText();
    }
  }
}

TEST(NginxWorkload, ServesAndNeverLogsFileContent) {
  DiagEngine diags;
  auto s = MakeSession(workloads::kNginx, BuildPreset::kOurMpx, &diags);
  ASSERT_NE(s, nullptr) << diags.ToString();
  const std::string secret(512, 'S');
  s->tlib->AddFile("secret.txt", secret);
  for (int i = 0; i < 3; ++i) {
    s->tlib->PushRx(0, "GET secret.txt\n");
  }
  auto r = s->vm->Call("server_run", {3});
  ASSERT_TRUE(r.ok) << r.fault_msg;
  EXPECT_EQ(r.ret, 3u);
  // The plaintext never reaches a public sink; only ciphertext was sent.
  EXPECT_FALSE(s->tlib->PublicOutputContains("SSSSSSSS"));
  EXPECT_NE(s->tlib->log().find("secret.txt"), std::string::npos);
}

TEST(PrivadoWorkload, ClassifiesAndDeclassifiesOnlyTheLabel) {
  DiagEngine diags;
  auto s = MakeSession(workloads::kPrivado, BuildPreset::kOurMpx, &diags);
  ASSERT_NE(s, nullptr) << diags.ToString();
  ASSERT_TRUE(s->vm->Call("nn_init", {}).ok);
  ASSERT_TRUE(s->vm->Call("nn_stage_image", {7}).ok);
  auto r = s->vm->Call("nn_classify", {});
  ASSERT_TRUE(r.ok) << r.fault_msg;
  EXPECT_EQ(s->tlib->declassified().size(), 1u);
  EXPECT_LT(static_cast<uint8_t>(s->tlib->declassified()[0]), 10);
}

TEST(MerkleWorkload, DetectsTamperedTree) {
  DiagEngine diags;
  auto s = MakeSession(workloads::kMerkle, BuildPreset::kOurMpx, &diags);
  ASSERT_NE(s, nullptr) << diags.ToString();
  ASSERT_TRUE(s->vm->Call("merkle_build", {64}).ok);
  auto ok = s->vm->Call("merkle_read_all", {0, 64});
  ASSERT_TRUE(ok.ok);
  EXPECT_EQ(ok.ret, 64u);
  // Corrupt a leaf hash in the public tree; verified reads must notice.
  const int gidx = [&] {
    const auto& globals = s->compiled->prog->binary.globals;
    for (size_t i = 0; i < globals.size(); ++i) {
      if (globals[i].name == "g_tree") return static_cast<int>(i);
    }
    return -1;
  }();
  ASSERT_GE(gidx, 0);
  const uint64_t tree_addr = s->compiled->prog->global_addr[gidx];
  uint64_t word = 0;
  s->vm->memory().Read(tree_addr + (64 + 5) * 16, 8, &word);
  s->vm->memory().Write(tree_addr + (64 + 5) * 16, 8, word ^ 0xff);
  auto tampered = s->vm->Call("merkle_read_all", {0, 64});
  ASSERT_TRUE(tampered.ok);
  EXPECT_LT(tampered.ret, 64u);
}

}  // namespace
}  // namespace confllvm
