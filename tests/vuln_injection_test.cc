// §7.6 vulnerability-injection experiments as tests: each exploit leaks the
// planted secret under Base and is stopped (by region separation, a wrapper
// check fault, or a bounds fault) under OurMPX and OurSeg.
#include <gtest/gtest.h>

#include "src/driver/confcc.h"

namespace confllvm {
namespace {

constexpr char kSecret[] = "TOPSECRETPASSWORD";

uint64_t StageString(Session* s, const std::string& str) {
  const uint64_t addr = s->compiled->prog->map.pub_heap + 0x10000;
  s->vm->memory().WriteBytes(addr, str.c_str(), str.size() + 1);
  return addr;
}

const char* kMongoose = R"(
int send(int fd, char *buf, int n);
int read_file_private(char *name, private char *buf, int n);
int handle_private(char *fname) {
  char hdr[128];
  private char fbuf[64];
  hdr[0] = 'h';
  read_file_private(fname, fbuf, 64);
  return 0;
}
int handle_public(int out_size) {
  char resp[16];
  char scratch[512];
  scratch[0] = 's';
  for (int i = 0; i < 16; i = i + 1) { resp[i] = 'p'; }
  send(0, resp, out_size);
  return 0;
}
)";

const char* kMinizip = R"(
int log_write(char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);
int compress_and_log(char *uname) {
  private char password[32];
  read_passwd(uname, password, 32);
  int addr = (int)(private char*)password;
  char *laundered = (char*)addr;
  log_write(laundered, 32);
  return 0;
}
)";

const char* kFormat = R"(
int send(int fd, char *buf, int n);
void read_passwd(char *uname, private char *pass, int n);
int count_directives(char *fmt) {
  int n = 0;
  int i = 0;
  while (fmt[i] != 0) {
    if (fmt[i] == '%') { n = n + 1; }
    i = i + 1;
  }
  return n;
}
int mini_sprintf(char *out, char *fmt, int *args, int nargs) {
  int directives = count_directives(fmt);
  int o = 0;
  for (int a = 0; a < directives; a = a + 1) {
    int v = args[a];
    for (int b = 0; b < 8; b = b + 1) {
      out[o] = (char)((v >> (b * 8)) & 255);
      o = o + 1;
    }
  }
  return o;
}
int handle(char *fmt) {
  int fmt_args[2];
  private int secret[4];
  char uname[8];
  uname[0] = 'u'; uname[1] = 0;
  read_passwd(uname, (private char*)secret, 32);
  fmt_args[0] = 1;
  fmt_args[1] = 2;
  char out[128];
  int n = mini_sprintf(out, fmt, fmt_args, 2);
  send(0, out, n);
  return n;
}
)";

struct Outcome {
  bool leaked = false;
  bool compiled = false;
};

Outcome RunMongoose(BuildPreset p) {
  DiagEngine diags;
  auto s = MakeSession(kMongoose, p, &diags);
  if (s == nullptr) {
    return {};
  }
  s->tlib->AddFile("private.txt", std::string(kSecret) + kSecret);
  s->vm->Call("handle_private", {StageString(s.get(), "private.txt")});
  s->vm->Call("handle_public", {512});
  return {s->tlib->PublicOutputContains(kSecret), true};
}

Outcome RunMinizip(BuildPreset p) {
  DiagEngine diags;
  auto s = MakeSession(kMinizip, p, &diags);
  if (s == nullptr) {
    return {};
  }
  s->tlib->SetPassword("zipuser", kSecret);
  s->vm->Call("compress_and_log", {StageString(s.get(), "zipuser")});
  return {s->tlib->PublicOutputContains(kSecret), true};
}

Outcome RunFormat(BuildPreset p) {
  DiagEngine diags;
  auto s = MakeSession(kFormat, p, &diags);
  if (s == nullptr) {
    return {};
  }
  s->tlib->SetPassword("u", kSecret);
  s->vm->Call("handle", {StageString(s.get(), "%d%d%d%d%d%d")});
  return {s->tlib->PublicOutputContains(kSecret), true};
}

TEST(VulnInjection, MongooseStaleStackLeaksUnderBaseOnly) {
  auto base = RunMongoose(BuildPreset::kBase);
  ASSERT_TRUE(base.compiled);
  EXPECT_TRUE(base.leaked) << "the exploit must work against the vanilla build";
  for (BuildPreset p : {BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    auto r = RunMongoose(p);
    ASSERT_TRUE(r.compiled);
    EXPECT_FALSE(r.leaked) << PresetName(p);
  }
}

TEST(VulnInjection, MinizipCastLeaksUnderBaseOnly) {
  auto base = RunMinizip(BuildPreset::kBase);
  ASSERT_TRUE(base.compiled);
  EXPECT_TRUE(base.leaked);
  for (BuildPreset p : {BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    auto r = RunMinizip(p);
    ASSERT_TRUE(r.compiled);
    EXPECT_FALSE(r.leaked) << PresetName(p);
  }
}

TEST(VulnInjection, FormatStringLeaksUnderBaseOnly) {
  auto base = RunFormat(BuildPreset::kBase);
  ASSERT_TRUE(base.compiled);
  EXPECT_TRUE(base.leaked);
  for (BuildPreset p : {BuildPreset::kOurMpx, BuildPreset::kOurSeg}) {
    auto r = RunFormat(p);
    ASSERT_TRUE(r.compiled);
    EXPECT_FALSE(r.leaked) << PresetName(p);
  }
}

TEST(VulnInjection, MinizipIsStoppedByAWrapperFaultNotByLuck) {
  DiagEngine diags;
  auto s = MakeSession(kMinizip, BuildPreset::kOurMpx, &diags);
  ASSERT_NE(s, nullptr);
  s->tlib->SetPassword("zipuser", kSecret);
  auto r = s->vm->Call("compress_and_log", {StageString(s.get(), "zipuser")});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fault, VmFault::kTrustedCheck) << r.fault_msg;
}

}  // namespace
}  // namespace confllvm
