// Tests for the persistent disk tier of the artifact cache
// (src/driver/disk_cache.h) and the versioned Binary serialization it rides
// on (src/isa/binary.h):
//
//   * round-trip property — Deserialize(Serialize(b)) re-serializes
//     byte-identically for every fig5 workload × all eight presets, and a
//     cold-disk → warm-disk build produces a byte-identical Binary and
//     identical CallResult/VmStats across both execution engines;
//   * corruption injection — bit flips at every 64-byte stride, truncations,
//     and stale format versions/fingerprints all degrade to a disk miss that
//     recompiles correctly and quarantines/overwrites the bad entry;
//   * concurrency — separate ArtifactCache instances sharing one directory
//     (the cross-process topology) race on the same key without torn reads,
//     with at most one observable compute per process.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <thread>
#include <vector>

#include "bench/workloads.h"
#include "src/driver/artifact_cache.h"
#include "src/driver/confcc.h"
#include "src/driver/disk_cache.h"
#include "src/driver/pipeline.h"
#include "src/isa/binary.h"
#include "src/support/rng.h"
#include "tests/test_util.h"

namespace fs = std::filesystem;

namespace confllvm {
namespace {

using workloads::kNumSpecKernels;
using workloads::kSpecKernels;

size_t Idx(StageId id) { return static_cast<size_t>(id); }

// A fresh, self-deleting cache directory per test.
struct TempCacheDir {
  TempCacheDir() {
    static std::atomic<int> counter{0};
    path = (fs::temp_directory_path() /
            ("confllvm_disk_cache_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(path);
  }
  ~TempCacheDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

std::unique_ptr<ArtifactCache> MakeDiskCache(const std::string& dir,
                                             size_t disk_bytes = 0) {
  auto cache = std::make_unique<ArtifactCache>();
  EXPECT_TRUE(cache->AttachDiskTier({dir, disk_bytes}));
  return cache;
}

std::unique_ptr<CompiledProgram> CompileVia(const std::string& src,
                                            const BuildConfig& config,
                                            ArtifactCache* cache,
                                            PipelineStats* stats = nullptr) {
  DiagEngine diags;
  auto cp = Compile(src, config, &diags, stats, cache);
  EXPECT_NE(cp, nullptr) << diags.ToString();
  return cp;
}

// The one *.art entry a single-source single-config compile leaves behind.
std::string SoleEntryPath(const std::string& dir) {
  std::string found;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (de.path().extension() != ".art") {
      continue;
    }
    EXPECT_TRUE(found.empty()) << "more than one cache entry in " << dir;
    found = de.path().string();
  }
  EXPECT_FALSE(found.empty()) << "no cache entry in " << dir;
  return found;
}

std::vector<uint8_t> ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

using testutil::EngineOpts;

// A small program exercising enough of the Binary surface (globals with
// initializers and relocations, imports, private data, calls) to make
// serialization gaps visible, while keeping disk entries small enough that
// stride-64 corruption sweeps stay cheap.
const char* kSmallSource = R"(
  int g_scale = 3;
  void *pub_malloc(int n);
  void pub_free(void *p);
  int scale(int x) { return x * g_scale; }
  int main() {
    int *h = (int*)pub_malloc(2 * sizeof(int));
    h[0] = scale(5);
    private int secret = 7;
    private int folded = secret + h[0];
    h[1] = 4;
    int r = h[0] + h[1];
    pub_free((void*)h);
    return r;
  })";

// ---- Serialization round trip ----

TEST(BinarySerialization, RoundTripByteIdenticalForEveryWorkloadAndPreset) {
  for (int k = 0; k < kNumSpecKernels; ++k) {
    SCOPED_TRACE(kSpecKernels[k].name);
    ArtifactCache cache;  // share the front end across the eight presets
    for (const BuildPreset p : kAllBuildPresets) {
      SCOPED_TRACE(PresetName(p));
      auto cp = CompileVia(kSpecKernels[k].source, BuildConfig::For(p), &cache);
      ASSERT_NE(cp, nullptr);
      const Binary& bin = cp->prog->binary;

      const std::vector<uint8_t> blob = SerializeBinary(bin);
      Binary decoded;
      ASSERT_TRUE(DeserializeBinary(blob, &decoded));
      EXPECT_EQ(SerializeBinary(decoded), blob);

      // Spot-check the fields byte-equality of the blob implies.
      EXPECT_EQ(decoded.code, bin.code);
      EXPECT_EQ(decoded.functions.size(), bin.functions.size());
      EXPECT_EQ(decoded.globals.size(), bin.globals.size());
      EXPECT_EQ(decoded.imports.size(), bin.imports.size());
      EXPECT_EQ(decoded.magic_sites.size(), bin.magic_sites.size());
      EXPECT_EQ(decoded.scheme, bin.scheme);
      EXPECT_EQ(decoded.cfi, bin.cfi);
      EXPECT_EQ(decoded.separate_stacks, bin.separate_stacks);
      EXPECT_EQ(decoded.magic_call_prefix, bin.magic_call_prefix);
      EXPECT_EQ(decoded.magic_ret_prefix, bin.magic_ret_prefix);
    }
  }
}

TEST(BinarySerialization, RejectsMalformedInput) {
  ArtifactCache cache;
  auto cp = CompileVia(kSmallSource, BuildConfig::For(BuildPreset::kOurMpx),
                       &cache);
  const std::vector<uint8_t> blob = SerializeBinary(cp->prog->binary);
  Binary out;

  // Every proper prefix is a truncation and must be rejected.
  for (size_t len = 0; len < blob.size(); ++len) {
    EXPECT_FALSE(DeserializeBinary(blob.data(), len, &out)) << "len " << len;
  }
  // Trailing garbage is rejected too (strict AtEnd).
  std::vector<uint8_t> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(DeserializeBinary(padded, &out));
  // Bad magic and bad version.
  std::vector<uint8_t> bad = blob;
  bad[0] ^= 0xff;
  EXPECT_FALSE(DeserializeBinary(bad, &out));
  bad = blob;
  bad[8] ^= 0xff;  // format-version word follows the 8-byte magic
  EXPECT_FALSE(DeserializeBinary(bad, &out));
  // The pristine blob still decodes after all that.
  EXPECT_TRUE(DeserializeBinary(blob, &out));
}

// ---- Cold-disk → warm-disk equivalence (the tentpole guarantee) ----

TEST(DiskCache, ColdThenWarmSweepSkipsBackendAndIsByteIdentical) {
  for (int k = 0; k < kNumSpecKernels; ++k) {
    SCOPED_TRACE(kSpecKernels[k].name);
    TempCacheDir dir;

    // Cold: empty directory, every artifact computed and persisted.
    auto cold_cache = MakeDiskCache(dir.path);
    auto cold = CompileBatch(PresetSweepJobs(kSpecKernels[k].source),
                             /*num_workers=*/4, cold_cache.get());
    ASSERT_GT(cold_cache->stats().disk_stores, 0u);

    // Warm: a fresh ArtifactCache instance on the same directory — the
    // cross-invocation topology ("new confcc process, old cache dir").
    auto warm_cache = MakeDiskCache(dir.path);
    auto warm = CompileBatch(PresetSweepJobs(kSpecKernels[k].source),
                             /*num_workers=*/4, warm_cache.get());

    const CacheStats ws = warm_cache->stats();
    EXPECT_GT(ws.disk_hits, 0u);
    // The entire Parse/Sema/IrGen/Opt/Codegen prefix is served from disk:
    // nothing upstream of Load ever computes on the warm run.
    EXPECT_EQ(ws.misses_by_stage[Idx(StageId::kParse)], 0u);
    EXPECT_EQ(ws.misses_by_stage[Idx(StageId::kSema)], 0u);
    EXPECT_EQ(ws.misses_by_stage[Idx(StageId::kIrGen)], 0u);
    EXPECT_EQ(ws.misses_by_stage[Idx(StageId::kOpt)], 0u);
    EXPECT_EQ(ws.misses_by_stage[Idx(StageId::kCodegen)], 0u);

    for (size_t i = 0; i < cold.size(); ++i) {
      SCOPED_TRACE(cold[i].label);
      ASSERT_TRUE(cold[i].ok) << cold[i].invocation->diags().ToString();
      ASSERT_TRUE(warm[i].ok) << warm[i].invocation->diags().ToString();

      // Every stage up to and including codegen restored from cache on the
      // warm run.
      const PipelineStats& ps = warm[i].invocation->stats();
      ASSERT_EQ(ps.stages.size(), 6u);
      for (size_t s = 0; s <= Idx(StageId::kCodegen); ++s) {
        EXPECT_TRUE(ps.stages[s].cached) << ps.stages[s].name;
      }

      // Byte-identical Binary, via the serialized images.
      EXPECT_EQ(SerializeBinary(warm[i].program->prog->binary),
                SerializeBinary(cold[i].program->prog->binary));

      // And identical observable execution across both engines: the cold
      // binary under the reference stepper against the warm binary under
      // the fast engine (vm_engine_test pins ref == fast per binary).
      auto cold_s = MakeSessionFor(std::move(cold[i].program),
                                   EngineOpts(VmEngine::kRef));
      auto warm_s = MakeSessionFor(std::move(warm[i].program),
                                   EngineOpts(VmEngine::kFast));
      ASSERT_NE(cold_s, nullptr);
      ASSERT_NE(warm_s, nullptr);
      const auto r_cold = cold_s->vm->Call("main", {});
      const auto r_warm = warm_s->vm->Call("main", {});
      testutil::ExpectSameResult(r_cold, r_warm);
      testutil::ExpectSameStats(*cold_s->vm, *warm_s->vm);
      EXPECT_TRUE(r_cold.ok) << r_cold.fault_msg;
    }
  }
}

TEST(DiskCache, WarmSingleInvocationRestoresCodegenAndStillVerifies) {
  TempCacheDir dir;
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  // Compile() marks its builds whole-program; the raw invocation below must
  // agree or its Opt key (and everything downstream) misses the warm cache.
  config.whole_program = true;
  auto cold_cache = MakeDiskCache(dir.path);
  CompileVia(kSmallSource, config, cold_cache.get());

  auto warm_cache = MakeDiskCache(dir.path);
  CompilerInvocation inv(kSmallSource, config);
  inv.set_cache(warm_cache.get());
  ASSERT_TRUE(RunStandardPipeline(&inv, /*verify=*/true))
      << inv.diags().ToString();
  const PipelineStats& ps = inv.stats();
  ASSERT_EQ(ps.stages.size(), 7u);
  for (size_t s = 0; s <= Idx(StageId::kCodegen); ++s) {
    EXPECT_TRUE(ps.stages[s].cached) << ps.stages[s].name;
  }
  // Load recomputes from the restored Binary; ConfVerify always runs.
  EXPECT_FALSE(ps.stages[Idx(StageId::kLoad)].cached);
  EXPECT_TRUE(ps.stages[Idx(StageId::kVerify)].ran);
  ASSERT_NE(inv.verify_result, nullptr);
  EXPECT_TRUE(inv.verify_result->ok);
  EXPECT_EQ(warm_cache->stats().disk_hits, 1u);
}

TEST(DiskCache, WarmBuildsReplayWarningsAcrossProcessBoundary) {
  const char* src = R"(
    int main() {
      private int secret = 1;
      if (secret) { return 2; }
      return 3;
    })";
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  config.sema.implicit_flows = ImplicitFlowMode::kWarn;
  TempCacheDir dir;

  DiagEngine cold_diags;
  auto cold_cache = MakeDiskCache(dir.path);
  ASSERT_NE(Compile(src, config, &cold_diags, nullptr, cold_cache.get()),
            nullptr);
  ASSERT_GT(cold_diags.num_warnings(), 0u);

  // A fresh cache on the same dir restores codegen from disk; the warning
  // emitted by the (skipped) front end must replay from the entry payload.
  DiagEngine warm_diags;
  auto warm_cache = MakeDiskCache(dir.path);
  ASSERT_NE(Compile(src, config, &warm_diags, nullptr, warm_cache.get()),
            nullptr);
  EXPECT_EQ(warm_diags.num_warnings(), cold_diags.num_warnings());
  EXPECT_TRUE(warm_diags.Contains("private")) << warm_diags.ToString();
  EXPECT_EQ(warm_cache->stats().disk_hits, 1u);
}

// ---- Corruption injection ----

struct CorruptionProbe {
  std::string entry;
  std::vector<uint8_t> pristine;
  std::vector<uint8_t> reference_blob;  // serialized cold Binary
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
};

CorruptionProbe PrimeEntry(const std::string& dir) {
  CorruptionProbe probe;
  auto cache = MakeDiskCache(dir);
  auto cp = CompileVia(kSmallSource, probe.config, cache.get());
  probe.reference_blob = SerializeBinary(cp->prog->binary);
  probe.entry = SoleEntryPath(dir);
  probe.pristine = ReadAll(probe.entry);
  return probe;
}

// One corrupted-entry round: a fresh cache instance must treat the entry as
// a disk miss, quarantine it, recompile to the exact cold Binary, and leave
// a valid replacement entry behind.
void ExpectDegradesToRecompute(const CorruptionProbe& probe,
                               const std::string& dir) {
  auto cache = MakeDiskCache(dir);
  auto cp = CompileVia(kSmallSource, probe.config, cache.get());
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(SerializeBinary(cp->prog->binary), probe.reference_blob);
  const CacheStats cs = cache->stats();
  EXPECT_EQ(cs.disk_hits, 0u);
  EXPECT_GE(cs.disk_invalid, 1u);
  EXPECT_GT(cs.disk_stores, 0u);  // the bad entry was overwritten

  // The overwritten entry is valid again: the next "process" hits.
  auto again = MakeDiskCache(dir);
  CompileVia(kSmallSource, probe.config, again.get());
  EXPECT_EQ(again->stats().disk_hits, 1u);
  EXPECT_EQ(again->stats().disk_invalid, 0u);
}

TEST(DiskCache, BitFlipAtEveryStrideDegradesToMissAndRecompiles) {
  TempCacheDir dir;
  const CorruptionProbe probe = PrimeEntry(dir.path);
  ASSERT_GT(probe.pristine.size(), 64u);

  std::vector<size_t> offsets;
  for (size_t off = 0; off < probe.pristine.size(); off += 64) {
    offsets.push_back(off);
  }
  offsets.push_back(probe.pristine.size() - 1);
  for (const size_t off : offsets) {
    SCOPED_TRACE("flip at offset " + std::to_string(off));
    std::vector<uint8_t> corrupt = probe.pristine;
    corrupt[off] ^= 0x40;
    WriteAll(probe.entry, corrupt);
    ExpectDegradesToRecompute(probe, dir.path);
  }
}

TEST(DiskCache, TruncationDegradesToMissAndRecompiles) {
  TempCacheDir dir;
  const CorruptionProbe probe = PrimeEntry(dir.path);

  std::vector<size_t> cuts = {0, 1, 7, kDiskCacheVersionOffset,
                              kDiskCacheFingerprintOffset + 4,
                              probe.pristine.size() / 2,
                              probe.pristine.size() - 1};
  Rng rng(0xd15c);  // a few extra deterministic "random" offsets
  for (int i = 0; i < 4; ++i) {
    cuts.push_back(static_cast<size_t>(rng.Below(probe.pristine.size())));
  }
  for (const size_t cut : cuts) {
    SCOPED_TRACE("truncate to " + std::to_string(cut));
    WriteAll(probe.entry,
             std::vector<uint8_t>(probe.pristine.begin(),
                                  probe.pristine.begin() +
                                      static_cast<ptrdiff_t>(cut)));
    ExpectDegradesToRecompute(probe, dir.path);
  }
}

TEST(DiskCache, StaleFormatVersionOrFingerprintIsMissAndOverwritten) {
  TempCacheDir dir;
  const CorruptionProbe probe = PrimeEntry(dir.path);

  // A future format version: entries written by a newer toolchain must not
  // be decoded by this one.
  std::vector<uint8_t> stale = probe.pristine;
  stale[kDiskCacheVersionOffset] =
      static_cast<uint8_t>(kDiskCacheFormatVersion + 1);
  WriteAll(probe.entry, stale);
  ExpectDegradesToRecompute(probe, dir.path);

  // A foreign toolchain fingerprint.
  stale = probe.pristine;
  stale[kDiskCacheFingerprintOffset] ^= 0xa5;
  WriteAll(probe.entry, stale);
  ExpectDegradesToRecompute(probe, dir.path);

  // The recompute re-wrote a current-version entry.
  const std::vector<uint8_t> rewritten = ReadAll(probe.entry);
  ASSERT_GT(rewritten.size(), kDiskCacheFingerprintOffset);
  EXPECT_EQ(rewritten[kDiskCacheVersionOffset],
            static_cast<uint8_t>(kDiskCacheFormatVersion));
}

// ---- Concurrency: separate cache instances sharing one directory ----

TEST(DiskCache, TwoCachesOneDirRaceWithoutTornReads) {
  TempCacheDir dir;
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const std::string src =
        "int main() { return " + std::to_string(40 + round) + "; }";
    const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
    DiagEngine ref_diags;
    auto ref = Compile(src, config, &ref_diags);
    ASSERT_NE(ref, nullptr);
    const std::vector<uint8_t> ref_blob = SerializeBinary(ref->prog->binary);

    // Each "process" is an independent ArtifactCache on the shared dir and
    // compiles the same key twice; in-process single-flight plus the disk
    // tier must yield at most one codegen compute per process, and every
    // restored artifact must be the true one (a torn read would surface as
    // a serialization mismatch, a checksum quarantine, or a crash).
    auto worker = [&](CacheStats* out) {
      auto cache = MakeDiskCache(dir.path);
      for (int i = 0; i < 2; ++i) {
        auto cp = CompileVia(src, config, cache.get());
        ASSERT_NE(cp, nullptr);
        EXPECT_EQ(SerializeBinary(cp->prog->binary), ref_blob);
      }
      *out = cache->stats();
    };
    CacheStats s1, s2;
    std::thread t1(worker, &s1);
    std::thread t2(worker, &s2);
    t1.join();
    t2.join();

    for (const CacheStats* s : {&s1, &s2}) {
      // Exactly-once observable compute per process: the second compile hits
      // memory, and the first either computed or restored from disk.
      EXPECT_LE(s->misses_by_stage[Idx(StageId::kCodegen)], 1u);
      EXPECT_EQ(s->disk_invalid, 0u);  // no torn entry was ever visible
    }
    // Someone produced the artifact.
    EXPECT_GE(s1.misses_by_stage[Idx(StageId::kCodegen)] +
                  s2.misses_by_stage[Idx(StageId::kCodegen)] + s1.disk_hits +
                  s2.disk_hits,
              1u);

    // The entry left behind is valid for the next process.
    auto after = MakeDiskCache(dir.path);
    CompileVia(src, config, after.get());
    EXPECT_EQ(after->stats().disk_hits, 1u);
  }
}

TEST(DiskCache, ConcurrentStoreAndLoadNeverObservesPartialEntry) {
  TempCacheDir dir;
  DiskCacheTier tier({dir.path, 0});
  ASSERT_TRUE(tier.ok());

  ArtifactCache scratch;
  auto cp = CompileVia(kSmallSource, BuildConfig::For(BuildPreset::kOurMpx),
                       &scratch);
  StageArtifact artifact;
  artifact.stage = StageId::kCodegen;
  artifact.binary = std::make_shared<const Binary>(cp->prog->binary);
  artifact.source = std::make_shared<const std::string>(kSmallSource);
  artifact.bytes = ApproxBytes(*artifact.binary);
  const std::vector<uint8_t> ref_blob = SerializeBinary(*artifact.binary);
  const std::string key = "codegen:0xtest";

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed_hits{0};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(tier.Store(key, artifact));
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      DiskCacheTier::LoadResult r = tier.Load(key);
      EXPECT_FALSE(r.invalid) << "reader observed a torn entry";
      if (r.artifact != nullptr) {
        EXPECT_EQ(SerializeBinary(*r.artifact->binary), ref_blob);
        observed_hits.fetch_add(1);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_GT(observed_hits.load(), 0u);
}

TEST(DiskCache, ForeignToolchainEntriesCoexistInsteadOfBeingQuarantined) {
  // The toolchain fingerprint is part of the entry's file name, so an entry
  // written by a different toolchain is simply not at this toolchain's
  // address: a plain miss that leaves the foreign file untouched, not a
  // quarantine — two versions sharing a cache dir must not perpetually
  // delete each other's work.
  TempCacheDir dir;
  const CorruptionProbe probe = PrimeEntry(dir.path);
  const std::string foreign = probe.entry + ".foreign-fingerprint.art";
  fs::rename(probe.entry, foreign);

  auto cache = MakeDiskCache(dir.path);
  auto cp = CompileVia(kSmallSource, probe.config, cache.get());
  EXPECT_EQ(SerializeBinary(cp->prog->binary), probe.reference_blob);
  const CacheStats cs = cache->stats();
  EXPECT_EQ(cs.disk_hits, 0u);
  EXPECT_EQ(cs.disk_invalid, 0u);  // a foreign entry is not corruption
  EXPECT_TRUE(fs::exists(foreign));  // and it survives
  EXPECT_TRUE(fs::exists(probe.entry));  // own entry stored alongside
}

TEST(DiskCache, StaleTempFilesAreSweptOnAttachFreshOnesKept) {
  TempCacheDir dir;
  // An orphan from a writer killed mid-store, and one young enough to be a
  // live in-flight write.
  const fs::path stale = fs::path(dir.path) / "codegen-0xdead.art.tmp.1.0";
  const fs::path fresh = fs::path(dir.path) / "codegen-0xbeef.art.tmp.2.0";
  WriteAll(stale.string(), {1, 2, 3});
  WriteAll(fresh.string(), {4, 5, 6});
  std::error_code ec;
  fs::last_write_time(
      stale, fs::file_time_type::clock::now() - std::chrono::hours(2), ec);
  ASSERT_FALSE(ec);

  DiskCacheTier tier({dir.path, 0});
  ASSERT_TRUE(tier.ok());
  EXPECT_FALSE(fs::exists(stale));
  EXPECT_TRUE(fs::exists(fresh));
}

// ---- Disk eviction ----

TEST(DiskCache, EvictsLruByMtimeUnderByteCap) {
  TempCacheDir dir;
  // Size one entry of the same shape the capped compiles below produce,
  // then cap the tier below two of them.
  {
    auto probe = MakeDiskCache(dir.path);
    CompileVia("int main() { return 59; }",
               BuildConfig::For(BuildPreset::kOurMpx), probe.get());
  }
  const size_t one_entry = ReadAll(SoleEntryPath(dir.path)).size();
  ASSERT_GT(one_entry, 0u);
  std::error_code ec;
  fs::remove_all(dir.path, ec);
  fs::create_directories(dir.path);

  const size_t cap = one_entry + one_entry / 2;
  auto cache = MakeDiskCache(dir.path, cap);
  for (int i = 0; i < 4; ++i) {
    const std::string src =
        "int main() { return " + std::to_string(60 + i) + "; }";
    DiagEngine cold;
    auto ref = Compile(src, BuildConfig::For(BuildPreset::kOurMpx), &cold);
    ASSERT_NE(ref, nullptr);
    auto cp = CompileVia(src, BuildConfig::For(BuildPreset::kOurMpx),
                         cache.get());
    EXPECT_EQ(SerializeBinary(cp->prog->binary),
              SerializeBinary(ref->prog->binary));
  }
  EXPECT_GT(cache->stats().disk_evictions, 0u);

  uintmax_t total = 0;
  for (const auto& de : fs::directory_iterator(dir.path)) {
    if (de.path().extension() == ".art") {
      total += de.file_size();
    }
  }
  EXPECT_LE(total, cap);
}

TEST(DiskCache, QuarantinedEntriesCountAgainstCapAndAreEvicted) {
  TempCacheDir dir;
  const CorruptionProbe probe = PrimeEntry(dir.path);

  // Corrupt the entry in place; the next process quarantines it (rename to
  // `<entry>.quar`) and recomputes.
  std::vector<uint8_t> corrupt = probe.pristine;
  corrupt[corrupt.size() / 2] ^= 0x40;
  WriteAll(probe.entry, corrupt);
  {
    auto cache = MakeDiskCache(dir.path);
    CompileVia(kSmallSource, probe.config, cache.get());
    EXPECT_GE(cache->stats().disk_invalid, 1u);
  }
  const std::string quar = probe.entry + ".quar";
  ASSERT_TRUE(fs::exists(quar));
  ASSERT_TRUE(fs::exists(probe.entry));  // the recompute's replacement

  // Make the quarantined file the LRU victim.
  std::error_code ec;
  fs::last_write_time(
      fs::path(quar), fs::file_time_type::clock::now() - std::chrono::hours(1),
      ec);
  ASSERT_FALSE(ec);

  // Cap at two kSmallSource-sized entries: the live entry + the quarantined
  // file + one more (smaller) store exceed it, so the store must evict —
  // and if quarantined bytes were NOT counted, the live entries alone would
  // fit and nothing would be evicted. The quarantined file disappearing
  // proves both halves of the satellite: it is counted against the cap and
  // LRU-evicted like any entry.
  const size_t one_entry = ReadAll(probe.entry).size();
  const size_t cap = 2 * one_entry;
  auto capped = MakeDiskCache(dir.path, cap);
  CompileVia("int main() { return 61; }", probe.config, capped.get());
  EXPECT_GT(capped->stats().disk_evictions, 0u);
  EXPECT_FALSE(fs::exists(quar));
  EXPECT_TRUE(fs::exists(probe.entry));  // fresher entries survive

  // The surviving entry still hits.
  auto again = MakeDiskCache(dir.path);
  CompileVia(kSmallSource, probe.config, again.get());
  EXPECT_EQ(again->stats().disk_hits, 1u);
}

// ---- sweep-mode --emit-bin coverage ----
//
// `confcc --preset=all --emit-bin=base` writes one file per preset via
// SweepEmitPath. Two properties matter: every preset gets a *distinct* path
// (no preset silently overwrites another), and a warm --cache-dir rerun
// reproduces byte-identical files (what the CI disk-cache job `cmp`s).

TEST(SweepEmitBin, EveryPresetGetsADistinctPath) {
  std::set<std::string> paths;
  for (const BuildPreset p : kAllBuildPresets) {
    paths.insert(SweepEmitPath("/tmp/out", PresetName(p)));
  }
  EXPECT_EQ(paths.size(), 8u);
  EXPECT_EQ(SweepEmitPath("/tmp/out", "OurMPX"), "/tmp/out.OurMPX.bin");
}

TEST(SweepEmitBin, WarmCacheDirRerunReproducesByteIdenticalFiles) {
  TempCacheDir cache_dir;
  TempCacheDir out_dir;
  const std::string src =
      "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) "
      "{ s = s + i; } return s; }\n";

  // One sweep pass: compile every preset through `cache`, serialize each
  // preset's Binary to SweepEmitPath(base, label) — exactly what confcc's
  // sweep --emit-bin path does.
  const auto emit_sweep = [&](const std::string& base) {
    auto cache = MakeDiskCache(cache_dir.path);
    auto outcomes = CompileBatch(PresetSweepJobs(src), 2, cache.get());
    for (const auto& out : outcomes) {
      EXPECT_TRUE(out.ok) << out.label << ": "
                          << out.invocation->diags().ToString();
      if (out.ok) {
        WriteAll(SweepEmitPath(base, out.label),
                 SerializeBinary(out.program->prog->binary));
      }
    }
    return cache->stats();
  };

  const CacheStats cold = emit_sweep(out_dir.path + "/cold");
  EXPECT_GT(cold.disk_stores, 0u);
  const CacheStats warm = emit_sweep(out_dir.path + "/warm");
  EXPECT_GT(warm.disk_hits, 0u);
  EXPECT_EQ(warm.misses_by_stage[Idx(StageId::kCodegen)], 0u);

  std::set<std::string> distinct;
  for (const BuildPreset p : kAllBuildPresets) {
    const std::string label = PresetName(p);
    SCOPED_TRACE(label);
    const auto cold_bytes = ReadAll(SweepEmitPath(out_dir.path + "/cold", label));
    const auto warm_bytes = ReadAll(SweepEmitPath(out_dir.path + "/warm", label));
    EXPECT_FALSE(cold_bytes.empty());
    EXPECT_EQ(cold_bytes, warm_bytes);
    // Each blob must be a loadable Binary of the right preset shape.
    Binary bin;
    ASSERT_TRUE(DeserializeBinary(cold_bytes, &bin));
    EXPECT_EQ(bin.scheme, BuildConfig::For(p).codegen.scheme);
    distinct.insert(SweepEmitPath(out_dir.path + "/cold", label));
  }
  EXPECT_EQ(distinct.size(), 8u);
}

}  // namespace
}  // namespace confllvm
