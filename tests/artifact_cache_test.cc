// Tests for the artifact cache (src/driver/artifact_cache.h) and the
// incremental pipeline built on it: hit/miss accounting, single-flight
// front-end sharing across the preset sweep, key sensitivity, LRU eviction
// under a byte cap, deep-clone independence, and the extended equivalence
// guarantee — warm, incremental, and batch-cached builds are byte-identical
// to cold sequential builds for all eight presets.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>

#include "src/driver/artifact_cache.h"
#include "src/driver/confcc.h"
#include "src/driver/pipeline.h"
#include "src/ir/irgen.h"
#include "src/lang/parser.h"

namespace confllvm {
namespace {

// Mirrors the rich program pipeline_stages_test.cc uses: every front-end
// feature class (quals, pointers, arrays, structs, globals, function
// pointers, recursion, floats, trusted imports) so clones must remap every
// kind of cross-reference.
const char* kSource = R"(
  struct acc { int lo; int hi; };
  struct acc g_acc;
  int g_scale = 2;
  void *pub_malloc(int n);
  void pub_free(void *p);
  int twice(int x) { return 2 * x; }
  int thrice(int x) { return 3 * x; }
  int apply(int (*f)(int), int v) { return f(v); }
  int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  private int blend(private int s, int p) { return s + p; }
  int main() {
    int a[8];
    for (int i = 0; i < 8; i = i + 1) { a[i] = i * g_scale; }
    int *h = (int*)pub_malloc(4 * sizeof(int));
    h[0] = apply(twice, a[3]);
    h[1] = apply(thrice, a[2]);
    h[2] = fib(10);
    h[3] = 1 + 2 * 3;
    g_acc.lo = h[0] + h[1];
    g_acc.hi = h[2] + h[3];
    private int secret = 41;
    private int mixed = blend(secret, g_acc.lo);
    private int sink[1];
    sink[0] = mixed;
    float f = 1.5;
    int fi = (int)(f * 4.0);
    int r = g_acc.lo + g_acc.hi + fi;
    pub_free((void*)h);
    return r;
  })";

size_t Idx(StageId id) { return static_cast<size_t>(id); }

std::unique_ptr<CompiledProgram> CompileCached(const std::string& src,
                                               const BuildConfig& config,
                                               ArtifactCache* cache,
                                               PipelineStats* stats = nullptr) {
  DiagEngine diags;
  auto cp = Compile(src, config, &diags, stats, cache);
  EXPECT_NE(cp, nullptr) << diags.ToString();
  return cp;
}

// ---- Hit/miss accounting ----

TEST(ArtifactCache, ColdThenWarmAccounting) {
  ArtifactCache cache;
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);

  // Cold: every cacheable stage misses and publishes.
  PipelineStats cold_stats;
  auto cold = CompileCached(kSource, config, &cache, &cold_stats);
  CacheStats cs = cache.stats();
  EXPECT_EQ(cs.hits, 0u);
  EXPECT_EQ(cs.misses, 6u);  // parse sema irgen opt codegen load
  EXPECT_EQ(cs.insertions, 6u);
  EXPECT_GT(cs.bytes_retained, 0u);
  for (const StageStats& s : cold_stats.stages) {
    EXPECT_FALSE(s.cached) << s.name;
    EXPECT_TRUE(s.ran) << s.name;
  }

  // Warm: the deepest probe restores the post-load artifact in one hit and
  // every stage row reports cached.
  PipelineStats warm_stats;
  auto warm = CompileCached(kSource, config, &cache, &warm_stats);
  cs = cache.stats();
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(cs.misses, 6u);  // unchanged
  ASSERT_EQ(warm_stats.stages.size(), 6u);
  for (const StageStats& s : warm_stats.stages) {
    EXPECT_TRUE(s.cached) << s.name;
    EXPECT_FALSE(s.ran) << s.name;
    EXPECT_TRUE(s.ok) << s.name;
  }

  // Byte-identical warm build, and the stats snapshots round-trip.
  EXPECT_EQ(warm->prog->binary.code, cold->prog->binary.code);
  EXPECT_EQ(warm->codegen_stats.code_words, cold->codegen_stats.code_words);
  EXPECT_EQ(warm->qual_constraints, cold->qual_constraints);
  EXPECT_GT(warm->qual_constraints, 0u);
}

// ---- Key sensitivity ----

TEST(ArtifactCache, OptLevelChangeKeepsFrontEndPrefix) {
  ArtifactCache cache;
  BuildConfig reduced = BuildConfig::For(BuildPreset::kOurMpx);
  ASSERT_EQ(reduced.opt_level, OptLevel::kReduced);
  CompileCached(kSource, reduced, &cache);
  const CacheStats before = cache.stats();

  // Same source, kFull: the front-end prefix must be reused — its keys do
  // not read OptLevel — while opt and everything downstream re-runs.
  BuildConfig full = reduced;
  full.opt_level = OptLevel::kFull;
  PipelineStats stats;
  CompileCached(kSource, full, &cache, &stats);
  const CacheStats after = cache.stats();
  EXPECT_EQ(after.misses_by_stage[Idx(StageId::kParse)],
            before.misses_by_stage[Idx(StageId::kParse)]);
  EXPECT_EQ(after.misses_by_stage[Idx(StageId::kSema)],
            before.misses_by_stage[Idx(StageId::kSema)]);
  EXPECT_EQ(after.misses_by_stage[Idx(StageId::kIrGen)],
            before.misses_by_stage[Idx(StageId::kIrGen)]);
  EXPECT_EQ(after.misses_by_stage[Idx(StageId::kOpt)],
            before.misses_by_stage[Idx(StageId::kOpt)] + 1);
  EXPECT_EQ(after.misses_by_stage[Idx(StageId::kCodegen)],
            before.misses_by_stage[Idx(StageId::kCodegen)] + 1);

  // The irgen artifact satisfied the prefix; opt onward actually ran.
  ASSERT_EQ(stats.stages.size(), 6u);
  EXPECT_TRUE(stats.stages[0].cached);   // parse
  EXPECT_TRUE(stats.stages[1].cached);   // sema
  EXPECT_TRUE(stats.stages[2].cached);   // irgen
  EXPECT_FALSE(stats.stages[3].cached);  // opt
  EXPECT_FALSE(stats.stages[4].cached);  // codegen
}

TEST(ArtifactCache, SourceChangeInvalidatesEverything) {
  ArtifactCache cache;
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  CompileCached(kSource, config, &cache);
  const CacheStats before = cache.stats();

  DiagEngine diags;
  PipelineStats stats;
  auto cp = Compile("int main() { return 3; }", config, &diags, &stats, &cache);
  ASSERT_NE(cp, nullptr) << diags.ToString();
  const CacheStats after = cache.stats();
  // A different source shares no key with the first compile: six new
  // misses, no new hits.
  EXPECT_EQ(after.misses, before.misses + 6);
  EXPECT_EQ(after.hits, before.hits);
  for (const StageStats& s : stats.stages) {
    EXPECT_FALSE(s.cached) << s.name;
  }
}

TEST(ArtifactCache, MagicSeedChangeOnlyRedoesLoad) {
  ArtifactCache cache;
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  CompileCached(kSource, config, &cache);
  const CacheStats before = cache.stats();

  config.load.magic_seed = 0xfeed;
  PipelineStats stats;
  CompileCached(kSource, config, &cache, &stats);
  const CacheStats after = cache.stats();
  EXPECT_EQ(after.misses, before.misses + 1);  // load only
  EXPECT_EQ(after.misses_by_stage[Idx(StageId::kLoad)],
            before.misses_by_stage[Idx(StageId::kLoad)] + 1);
  ASSERT_EQ(stats.stages.size(), 6u);
  EXPECT_TRUE(stats.stages[4].cached);   // codegen restored
  EXPECT_FALSE(stats.stages[5].cached);  // load re-ran under the new seed
}

// ---- Batch front-end sharing (the PR's acceptance criterion) ----

TEST(ArtifactCache, PresetSweepRunsFrontEndOnce) {
  ArtifactCache cache;
  const auto jobs = PresetSweepJobs(kSource);
  ASSERT_EQ(jobs.size(), 8u);
  auto outcomes = CompileBatch(jobs, /*num_workers=*/4, &cache);

  // Reference: cold compiles without any cache.
  for (size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    ASSERT_TRUE(outcomes[i].ok) << outcomes[i].invocation->diags().ToString();
    DiagEngine diags;
    auto cold = Compile(jobs[i].source, jobs[i].config, &diags);
    ASSERT_NE(cold, nullptr);
    EXPECT_EQ(outcomes[i].program->prog->binary.code, cold->prog->binary.code);
  }

  // Single-flight guarantees the front end ran exactly once per source even
  // though all eight jobs started concurrently.
  const CacheStats cs = cache.stats();
  EXPECT_EQ(cs.misses_by_stage[Idx(StageId::kParse)], 1u);
  EXPECT_EQ(cs.misses_by_stage[Idx(StageId::kSema)], 1u);
  EXPECT_EQ(cs.misses_by_stage[Idx(StageId::kIrGen)], 1u);
  // Opt is keyed per OptLevel: kFull (Base, BaseOA) + kReduced (the rest).
  EXPECT_EQ(cs.misses_by_stage[Idx(StageId::kOpt)], 2u);
  // Base and BaseOA differ only in allocator policy (a runtime property),
  // so they also share codegen/load artifacts: at most 7 distinct keys.
  EXPECT_LE(cs.misses_by_stage[Idx(StageId::kCodegen)], 7u);
  EXPECT_LE(cs.misses_by_stage[Idx(StageId::kLoad)], 7u);
  EXPECT_GT(cs.hits, 0u);
}

TEST(ArtifactCache, SequentialSweepSharesDeterministically) {
  // One worker makes the schedule deterministic: Base compiles cold (6
  // misses), BaseOA restores Base's post-load artifact in a single hit.
  ArtifactCache cache;
  auto all = PresetSweepJobs(kSource);
  std::vector<BatchJob> jobs(all.begin(), all.begin() + 2);
  auto outcomes = CompileBatch(jobs, /*num_workers=*/1, &cache);
  ASSERT_TRUE(outcomes[0].ok);
  ASSERT_TRUE(outcomes[1].ok);
  const CacheStats cs = cache.stats();
  EXPECT_EQ(cs.misses, 6u);
  EXPECT_EQ(cs.hits, 1u);
  EXPECT_EQ(outcomes[0].program->prog->binary.code,
            outcomes[1].program->prog->binary.code);
}

// ---- Incremental recompiles ----

TEST(ArtifactCache, IncrementalPresetSwitchReusesPrefix) {
  ArtifactCache cache;
  auto mpx = CompileCached(kSource, BuildConfig::For(BuildPreset::kOurMpx), &cache);

  // Switching preset re-runs only the instrumentation stages: OurSeg has the
  // same OptLevel, so parse/sema/irgen/opt all restore from cache.
  PipelineStats stats;
  auto seg =
      CompileCached(kSource, BuildConfig::For(BuildPreset::kOurSeg), &cache, &stats);
  ASSERT_EQ(stats.stages.size(), 6u);
  EXPECT_TRUE(stats.stages[0].cached);
  EXPECT_TRUE(stats.stages[1].cached);
  EXPECT_TRUE(stats.stages[2].cached);
  EXPECT_TRUE(stats.stages[3].cached);
  EXPECT_FALSE(stats.stages[4].cached);
  EXPECT_FALSE(stats.stages[5].cached);

  // And the incremental build matches a cold OurSeg build byte for byte.
  DiagEngine diags;
  auto cold = Compile(kSource, BuildConfig::For(BuildPreset::kOurSeg), &diags);
  ASSERT_NE(cold, nullptr);
  EXPECT_EQ(seg->prog->binary.code, cold->prog->binary.code);
  EXPECT_NE(seg->prog->binary.code, mpx->prog->binary.code);
}

TEST(ArtifactCache, WarmBuildsByteIdenticalAcrossAllPresets) {
  ArtifactCache cache;
  for (const BuildPreset p : kAllBuildPresets) {
    SCOPED_TRACE(PresetName(p));
    const BuildConfig config = BuildConfig::For(p);
    DiagEngine cold_diags;
    auto cold = Compile(kSource, config, &cold_diags);
    ASSERT_NE(cold, nullptr) << cold_diags.ToString();
    auto first = CompileCached(kSource, config, &cache);   // fills / reuses
    auto warm = CompileCached(kSource, config, &cache);    // fully cached
    EXPECT_EQ(first->prog->binary.code, cold->prog->binary.code);
    EXPECT_EQ(warm->prog->binary.code, cold->prog->binary.code);
    EXPECT_EQ(warm->prog->binary.magic_sites.size(),
              cold->prog->binary.magic_sites.size());
  }
}

// ---- Warnings replay on cached rebuilds ----

TEST(ArtifactCache, WarmBuildsReplayWarnings) {
  // Under ImplicitFlowMode::kWarn a private branch compiles with a warning;
  // warm builds restore the front end from the cache, so the warning must
  // be replayed from the artifact — once, not per restored stage.
  const char* src = R"(
    int main() {
      private int secret = 1;
      if (secret) { return 2; }
      return 3;
    })";
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  config.sema.implicit_flows = ImplicitFlowMode::kWarn;

  ArtifactCache cache;
  size_t cold_warnings = 0;
  for (int round = 0; round < 3; ++round) {
    DiagEngine diags;
    auto cp = Compile(src, config, &diags, nullptr, &cache);
    ASSERT_NE(cp, nullptr) << diags.ToString();
    if (round == 0) {
      cold_warnings = diags.num_warnings();
      EXPECT_GT(cold_warnings, 0u) << "expected a private-branch warning";
    } else {
      EXPECT_EQ(diags.num_warnings(), cold_warnings) << "round " << round;
      EXPECT_TRUE(diags.Contains("private")) << diags.ToString();
    }
  }

  // A preset switch replays the shared front-end's warning into the new
  // invocation too.
  BuildConfig seg = BuildConfig::For(BuildPreset::kOurSeg);
  seg.sema.implicit_flows = ImplicitFlowMode::kWarn;
  DiagEngine diags;
  auto cp = Compile(src, seg, &diags, nullptr, &cache);
  ASSERT_NE(cp, nullptr);
  EXPECT_EQ(diags.num_warnings(), cold_warnings);
}

// ---- Verify stays in the loop on cached rebuilds ----

TEST(ArtifactCache, VerifyRunsOnWarmRebuilds) {
  ArtifactCache cache;
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  for (int round = 0; round < 2; ++round) {
    CompilerInvocation inv(kSource, config);
    inv.set_cache(&cache);
    ASSERT_TRUE(RunStandardPipeline(&inv, /*verify=*/true))
        << inv.diags().ToString();
    ASSERT_NE(inv.verify_result, nullptr) << "round " << round;
    EXPECT_TRUE(inv.verify_result->ok);
    const StageStats& verify = inv.stats().stages.back();
    EXPECT_EQ(verify.id, StageId::kVerify);
    // ConfVerify executed — it is never satisfied from the cache.
    EXPECT_FALSE(verify.cached) << "round " << round;
    EXPECT_TRUE(verify.ran) << "round " << round;
  }
}

// ---- Eviction ----

TEST(ArtifactCache, EvictsLruUnderByteCap) {
  // Size one compile's artifacts, then cap the cache below it so retaining
  // everything is impossible.
  ArtifactCache probe_cache;
  CompileCached(kSource, BuildConfig::For(BuildPreset::kOurMpx), &probe_cache);
  const size_t full_bytes = probe_cache.stats().bytes_retained;
  ASSERT_GT(full_bytes, 0u);

  ArtifactCache cache(full_bytes / 2);
  CompileCached(kSource, BuildConfig::For(BuildPreset::kOurMpx), &cache);
  const CacheStats cs = cache.stats();
  EXPECT_GT(cs.evictions, 0u);
  EXPECT_LE(cs.bytes_retained, full_bytes / 2);
}

TEST(ArtifactCache, EvictionPreservesCorrectness) {
  // A pathologically small cap evicts almost everything; compiles must
  // still be byte-identical to cold builds, just with fewer hits.
  ArtifactCache cache(/*max_bytes=*/1024);
  DiagEngine diags;
  auto cold = Compile(kSource, BuildConfig::For(BuildPreset::kOurSeg), &diags);
  ASSERT_NE(cold, nullptr);
  for (int round = 0; round < 3; ++round) {
    auto cp = CompileCached(kSource, BuildConfig::For(BuildPreset::kOurSeg), &cache);
    EXPECT_EQ(cp->prog->binary.code, cold->prog->binary.code) << round;
  }
  EXPECT_LE(cache.stats().bytes_retained, 1024u);
}

// ---- Stats snapshot coherence ----

TEST(ArtifactCache, StatsSnapshotIsCoherentUnderConcurrentCompiles) {
  // Regression test for the --cache-stats reporting path: stats() must
  // return one snapshot taken under the cache lock, so a reader racing live
  // compiles can never observe a torn struct. The invariants below hold for
  // every coherent snapshot (each hit/miss increments its aggregate and its
  // per-stage counter under one lock hold) but are routinely violated by a
  // field-at-a-time read of live state.
  ArtifactCache cache;
  std::atomic<bool> stop{false};
  std::thread poller([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const CacheStats cs = cache.stats();
      uint64_t hit_sum = 0;
      uint64_t miss_sum = 0;
      for (size_t i = 0; i < CacheStats::kNumStages; ++i) {
        hit_sum += cs.hits_by_stage[i];
        miss_sum += cs.misses_by_stage[i];
      }
      EXPECT_EQ(cs.hits, hit_sum);
      EXPECT_EQ(cs.misses, miss_sum);
      EXPECT_GE(cs.insertions, cs.evictions);
      // Every producer registration resolves to an insertion (Put) or an
      // abandon; an in-flight key is still an observed miss, so misses can
      // only run ahead of insertions, never behind.
      EXPECT_GE(cs.misses, cs.insertions - std::min<uint64_t>(
                                               cs.insertions, cs.disk_hits));
    }
  });
  // Churn: three sources × full preset sweeps, all through the one cache.
  for (int round = 0; round < 3; ++round) {
    const std::string src =
        "int main() { return " + std::to_string(7 + round) + "; }";
    auto outcomes = CompileBatch(PresetSweepJobs(src), /*num_workers=*/4, &cache);
    for (const auto& out : outcomes) {
      EXPECT_TRUE(out.ok) << out.invocation->diags().ToString();
    }
  }
  stop.store(true);
  poller.join();

  const CacheStats final_stats = cache.stats();
  EXPECT_GT(final_stats.hits, 0u);
  EXPECT_GT(final_stats.misses, 0u);
}

// ---- Deep-clone independence ----

TEST(ArtifactClone, TypedProgramCloneIsIndependentAndEquivalent) {
  DiagEngine diags;
  auto ast = Parse(kSource, &diags);
  ASSERT_FALSE(diags.HasErrors());
  auto typed = RunSema(std::move(ast), SemaOptions{}, &diags);
  ASSERT_NE(typed, nullptr) << diags.ToString();

  auto clone = typed->Clone();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->functions.size(), typed->functions.size());
  EXPECT_EQ(clone->expr_info.size(), typed->expr_info.size());
  EXPECT_EQ(clone->solver_stats.constraints, typed->solver_stats.constraints);

  // The clone must not alias the original: every symbol, AST node, and type
  // shape is a fresh object.
  for (const auto& f : clone->functions) {
    EXPECT_NE(f.decl, nullptr);
    EXPECT_EQ(typed->FindFunction(f.decl->name) == nullptr, false);
    EXPECT_NE(f.decl, typed->FindFunction(f.decl->name)->decl);
  }
  EXPECT_NE(clone->types.get(), typed->types.get());

  // Lowering the original and the clone yields identical IR.
  DiagEngine d1, d2;
  auto ir1 = GenerateIr(*typed, &d1);
  auto ir2 = GenerateIr(*clone, &d2);
  ASSERT_NE(ir1, nullptr);
  ASSERT_NE(ir2, nullptr);
  EXPECT_EQ(IrToString(*ir1), IrToString(*ir2));
}

TEST(ArtifactClone, IrModuleCloneIsIndependentAndEquivalent) {
  DiagEngine diags;
  auto ast = Parse(kSource, &diags);
  auto typed = RunSema(std::move(ast), SemaOptions{}, &diags);
  ASSERT_NE(typed, nullptr);
  auto ir = GenerateIr(*typed, &diags);
  ASSERT_NE(ir, nullptr);

  auto clone = ir->Clone();
  EXPECT_EQ(IrToString(*clone), IrToString(*ir));

  // Optimizing the clone must leave the original untouched...
  const std::string before = IrToString(*ir);
  OptimizeModule(clone.get(), OptLevel::kFull);
  EXPECT_EQ(IrToString(*ir), before);

  // ...and codegen from both pre-opt modules is byte-identical.
  const CodegenOptions opts = BuildConfig::For(BuildPreset::kOurMpx).codegen;
  DiagEngine d1, d2;
  Binary b1 = GenerateCode(*ir, opts, &d1);
  auto reclone = ir->Clone();
  Binary b2 = GenerateCode(*reclone, opts, &d2);
  EXPECT_EQ(b1.code, b2.code);
}

}  // namespace
}  // namespace confllvm
