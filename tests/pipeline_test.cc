// End-to-end smoke tests: compile MiniC, run on the VM, across all eight
// build presets of §7.1/§7.2.
#include <gtest/gtest.h>

#include "src/driver/confcc.h"

namespace confllvm {
namespace {

constexpr BuildPreset kAllPresets[] = {
    BuildPreset::kBase,    BuildPreset::kBaseOA, BuildPreset::kOur1Mem,
    BuildPreset::kOurBare, BuildPreset::kOurCFI, BuildPreset::kOurMpx,
    BuildPreset::kOurMpxSep, BuildPreset::kOurSeg,
};

uint64_t RunMain(const std::string& src, BuildPreset preset,
                 const std::vector<uint64_t>& args = {}) {
  DiagEngine diags;
  auto s = MakeSession(src, preset, &diags);
  EXPECT_NE(s, nullptr) << diags.ToString();
  if (s == nullptr) {
    return ~0ull;
  }
  auto r = s->vm->Call("main", args);
  EXPECT_TRUE(r.ok) << "preset=" << PresetName(preset) << " fault="
                    << FaultName(r.fault) << ": " << r.fault_msg;
  return r.ret;
}

class AllPresets : public ::testing::TestWithParam<BuildPreset> {};

INSTANTIATE_TEST_SUITE_P(Presets, AllPresets, ::testing::ValuesIn(kAllPresets),
                         [](const auto& info) {
                           std::string n = PresetName(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

TEST_P(AllPresets, ReturnsConstant) {
  EXPECT_EQ(RunMain("int main() { return 42; }", GetParam()), 42u);
}

TEST_P(AllPresets, Arithmetic) {
  EXPECT_EQ(RunMain("int main() { int a = 6; int b = 7; return a * b + 1; }",
                    GetParam()),
            43u);
}

TEST_P(AllPresets, LoopSum) {
  const char* src = R"(
    int main() {
      int s = 0;
      for (int i = 1; i <= 100; i = i + 1) { s = s + i; }
      return s;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 5050u);
}

TEST_P(AllPresets, LocalArrayAndPointers) {
  const char* src = R"(
    int main() {
      int a[10];
      int *p = a;
      for (int i = 0; i < 10; i = i + 1) { p[i] = i * i; }
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + a[i]; }
      return s;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 285u);
}

TEST_P(AllPresets, PrivateLocalsAndArgs) {
  const char* src = R"(
    private int add(private int x) { return x + 1; }
    private int incr(private int *p, private int x) {
      int y = add(x);
      *p = y;
      return *p;
    }
    int main() {
      private int v = 41;
      private int r = incr(&v, v);
      if (r == 42) { return 1; }
      return 0;
    })";
  // Branching on private: run in warn mode equivalent => use all-private?
  // The condition `r == 42` is private, so strict mode rejects it. Compare
  // via arithmetic instead.
  const char* src2 = R"(
    private int add(private int x) { return x + 1; }
    private int incr(private int *p, private int x) {
      int y = add(x);
      *p = y;
      return *p;
    }
    int deliver(private int r) {
      private int probe = r - 42;   // stays private; never branched on
      private int sink[1];
      sink[0] = probe;
      return 7;
    }
    int main() {
      private int v = 41;
      private int r = incr(&v, v);
      return deliver(r);
    })";
  (void)src;
  EXPECT_EQ(RunMain(src2, GetParam()), 7u);
}

TEST_P(AllPresets, StructsAndGlobals) {
  const char* src = R"(
    struct point { int x; int y; };
    struct point g_origin;
    int g_scale = 3;
    int main() {
      g_origin.x = 4;
      g_origin.y = 5;
      struct point p;
      p.x = g_origin.x * g_scale;
      p.y = g_origin.y * g_scale;
      struct point *q = &p;
      return q->x + q->y;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 27u);
}

TEST_P(AllPresets, FunctionPointers) {
  const char* src = R"(
    int twice(int x) { return 2 * x; }
    int thrice(int x) { return 3 * x; }
    int apply(int (*f)(int), int v) { return f(v); }
    int main() {
      int (*g)(int) = twice;
      int a = apply(g, 10);
      g = thrice;
      int b = apply(g, 10);
      return a + b;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 50u);
}

TEST_P(AllPresets, RecursionFib) {
  const char* src = R"(
    int fib(int n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(15); })";
  EXPECT_EQ(RunMain(src, GetParam()), 610u);
}

TEST_P(AllPresets, FloatMath) {
  const char* src = R"(
    float g_acc = 0.0;
    int main() {
      float x = 1.5;
      float y = 2.25;
      g_acc = x * y + 0.75;
      float z = g_acc * 4.0;
      return (int)z;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 16u);  // (1.5*2.25+0.75)*4 = 16.5 -> 16
}

TEST_P(AllPresets, CharsAndStrings) {
  const char* src = R"(
    int str_len(char *s) {
      int n = 0;
      while (s[n] != 0) { n = n + 1; }
      return n;
    }
    int main() {
      char buf[16];
      char *msg = "hello";
      int n = str_len(msg);
      for (int i = 0; i < n; i = i + 1) { buf[i] = msg[i]; }
      buf[n] = 0;
      return str_len(buf) + (int)buf[0];
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 5u + 'h');
}

TEST_P(AllPresets, HeapAllocationViaT) {
  const char* src = R"(
    void *pub_malloc(int n);
    void pub_free(void *p);
    int main() {
      int *a = (int*)pub_malloc(10 * sizeof(int));
      for (int i = 0; i < 10; i = i + 1) { a[i] = i; }
      int s = 0;
      for (int i = 0; i < 10; i = i + 1) { s = s + a[i]; }
      pub_free((void*)a);
      return s;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 45u);
}

TEST_P(AllPresets, PrivateHeapAndDeclassifyViaT) {
  const char* src = R"(
    private void *prv_malloc(int n);
    void prv_free(private void *p);
    int encrypt(private char *pt, char *ct, int n);
    int send(int fd, char *buf, int n);
    int main() {
      private char *secret = (private char*)prv_malloc(16);
      for (int i = 0; i < 16; i = i + 1) { secret[i] = (char)(65 + i); }
      char out[16];
      encrypt(secret, out, 16);
      send(1, out, 16);
      prv_free((private void*)secret);
      return 0;
    })";
  EXPECT_EQ(RunMain(src, GetParam()), 0u);
}

TEST(SemaErrors, LeakPrivateToPublicSinkRejected) {
  // The Figure-1 bug: sending a private buffer on a public channel is a
  // compile-time qualifier error.
  const char* src = R"(
    int send(int fd, char *buf, int n);
    void read_passwd(char *uname, private char *pass, int n);
    int main() {
      char uname[8];
      private char passwd[64];
      read_passwd(uname, passwd, 64);
      send(1, passwd, 64);
      return 0;
    })";
  DiagEngine diags;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &diags);
  EXPECT_EQ(s, nullptr);
  EXPECT_TRUE(diags.Contains("private data flows to public")) << diags.ToString();
}

TEST(SemaErrors, BranchOnPrivateRejectedInStrictMode) {
  const char* src = R"(
    int main() {
      private int x = 5;
      if (x > 3) { return 1; }
      return 0;
    })";
  DiagEngine diags;
  auto s = MakeSession(src, BuildPreset::kOurMpx, &diags);
  EXPECT_EQ(s, nullptr);
  EXPECT_TRUE(diags.Contains("branching on private")) << diags.ToString();
}

}  // namespace
}  // namespace confllvm
