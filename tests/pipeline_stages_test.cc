// Tests for the staged compilation pipeline (src/driver/pipeline.h):
// stage ordering, per-stage stats, OptLevel→pass selection, CompileBatch
// determinism, and byte-for-byte equivalence with the pre-pipeline
// monolithic driver sequence.
#include <gtest/gtest.h>

#include "bench/workloads.h"
#include "src/driver/confcc.h"
#include "src/driver/pipeline.h"
#include "src/ir/irgen.h"
#include "src/lang/parser.h"

namespace confllvm {
namespace {

// A program that exercises every front-end feature class: private quals,
// pointers, arrays, structs, globals, function pointers, recursion, floats,
// and trusted imports.
const char* kRichSource = R"(
  struct acc { int lo; int hi; };
  struct acc g_acc;
  int g_scale = 2;
  void *pub_malloc(int n);
  void pub_free(void *p);
  int twice(int x) { return 2 * x; }
  int thrice(int x) { return 3 * x; }
  int apply(int (*f)(int), int v) { return f(v); }
  int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
  }
  private int blend(private int s, int p) { return s + p; }
  int main() {
    int a[8];
    for (int i = 0; i < 8; i = i + 1) { a[i] = i * g_scale; }
    int *h = (int*)pub_malloc(4 * sizeof(int));
    h[0] = apply(twice, a[3]);
    h[1] = apply(thrice, a[2]);
    h[2] = fib(10);
    h[3] = 1 + 2 * 3;
    g_acc.lo = h[0] + h[1];
    g_acc.hi = h[2] + h[3];
    private int secret = 41;
    private int mixed = blend(secret, g_acc.lo);
    private int sink[1];
    sink[0] = mixed;
    float f = 1.5;
    int fi = (int)(f * 4.0);
    int r = g_acc.lo + g_acc.hi + fi;
    pub_free((void*)h);
    return r;
  })";

// The pre-pipeline driver body: the exact stage sequence the monolithic
// Compile() ran before the PassManager refactor.
std::unique_ptr<LoadedProgram> LegacyCompile(const std::string& source,
                                             const BuildConfig& config,
                                             DiagEngine* diags) {
  auto ast = Parse(source, diags);
  if (diags->HasErrors()) {
    return nullptr;
  }
  auto typed = RunSema(std::move(ast), config.sema, diags);
  if (typed == nullptr) {
    return nullptr;
  }
  auto ir = GenerateIr(*typed, diags);
  if (ir == nullptr) {
    return nullptr;
  }
  OptimizeModule(ir.get(), config.opt_level);
  CodegenStats stats;
  Binary bin = GenerateCode(*ir, config.codegen, diags, &stats);
  if (diags->HasErrors()) {
    return nullptr;
  }
  return LoadBinary(std::move(bin), config.load, diags);
}

uint64_t RunMainCycles(LoadedProgram* prog, AllocPolicy policy, uint64_t* ret) {
  TrustedOptions topts;
  topts.alloc_policy = policy;
  TrustedLib tlib(topts);
  Vm vm(prog, &tlib);
  auto r = vm.Call("main", {});
  EXPECT_TRUE(r.ok) << r.fault_msg;
  *ret = r.ret;
  return r.cycles;
}

class AllPresets : public ::testing::TestWithParam<BuildPreset> {};

INSTANTIATE_TEST_SUITE_P(Presets, AllPresets, ::testing::ValuesIn(kAllBuildPresets),
                         [](const auto& info) {
                           std::string n = PresetName(info.param);
                           for (char& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// ---- Pipeline equivalence: new PassManager path vs the legacy sequence ----

TEST_P(AllPresets, ByteIdenticalToLegacyPath) {
  const BuildConfig config = BuildConfig::For(GetParam());

  DiagEngine legacy_diags;
  auto legacy = LegacyCompile(kRichSource, config, &legacy_diags);
  ASSERT_NE(legacy, nullptr) << legacy_diags.ToString();

  DiagEngine diags;
  auto compiled = Compile(kRichSource, config, &diags);
  ASSERT_NE(compiled, nullptr) << diags.ToString();

  // Byte-identical binary: code image, function table, magic sites.
  ASSERT_EQ(compiled->prog->binary.code, legacy->binary.code);
  ASSERT_EQ(compiled->prog->binary.functions.size(),
            legacy->binary.functions.size());
  for (size_t i = 0; i < legacy->binary.functions.size(); ++i) {
    EXPECT_EQ(compiled->prog->binary.functions[i].entry_word,
              legacy->binary.functions[i].entry_word);
    EXPECT_EQ(compiled->prog->binary.functions[i].taint_bits,
              legacy->binary.functions[i].taint_bits);
  }
  EXPECT_EQ(compiled->prog->binary.magic_sites.size(),
            legacy->binary.magic_sites.size());

  // Identical VM behaviour: same result, same cycle count.
  uint64_t legacy_ret = 0;
  uint64_t new_ret = 0;
  const uint64_t legacy_cycles =
      RunMainCycles(legacy.get(), config.alloc_policy, &legacy_ret);
  const uint64_t new_cycles =
      RunMainCycles(compiled->prog.get(), config.alloc_policy, &new_ret);
  EXPECT_EQ(new_ret, legacy_ret);
  EXPECT_EQ(new_cycles, legacy_cycles);
}

// ---- Sharded codegen determinism ----

TEST_P(AllPresets, ShardedCodegenBitIdentical) {
  // Function-parallel emission must be bit-transparent: any --jobs value
  // produces the same binary, magic sites, and emission statistics as a
  // sequential run.
  BuildConfig sequential = BuildConfig::For(GetParam());
  sequential.codegen_jobs = 1;
  BuildConfig sharded = sequential;
  sharded.codegen_jobs = 4;

  DiagEngine d1, d2;
  PipelineStats s1, s2;
  auto a = Compile(kRichSource, sequential, &d1, &s1);
  auto b = Compile(kRichSource, sharded, &d2, &s2);
  ASSERT_NE(a, nullptr) << d1.ToString();
  ASSERT_NE(b, nullptr) << d2.ToString();
  EXPECT_EQ(a->prog->binary.code, b->prog->binary.code);
  EXPECT_EQ(a->prog->binary.magic_sites.size(), b->prog->binary.magic_sites.size());
  EXPECT_EQ(a->codegen_stats.bnd_checks_emitted, b->codegen_stats.bnd_checks_emitted);
  EXPECT_EQ(a->codegen_stats.bnd_checks_coalesced,
            b->codegen_stats.bnd_checks_coalesced);
  EXPECT_EQ(a->codegen_stats.magic_words, b->codegen_stats.magic_words);
  EXPECT_EQ(a->codegen_stats.private_spills, b->codegen_stats.private_spills);
  EXPECT_EQ(a->codegen_stats.code_words, b->codegen_stats.code_words);
}

TEST(ShardedCodegen, DirectGenerateCodeAnyWorkerCount) {
  const BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  DiagEngine diags;
  auto ast = Parse(kRichSource, &diags);
  auto typed = RunSema(std::move(ast), config.sema, &diags);
  ASSERT_NE(typed, nullptr) << diags.ToString();
  auto ir = GenerateIr(*typed, &diags);
  ASSERT_NE(ir, nullptr);
  OptimizeModule(ir.get(), config.opt_level);

  CodegenStats ref_stats;
  Binary ref = GenerateCode(*ir, config.codegen, &diags, &ref_stats, /*jobs=*/1);
  for (const unsigned jobs : {2u, 3u, 8u, 0u /* hardware */}) {
    CodegenStats stats;
    DiagEngine d;
    Binary bin = GenerateCode(*ir, config.codegen, &d, &stats, jobs);
    EXPECT_EQ(bin.code, ref.code) << "jobs=" << jobs;
    EXPECT_EQ(stats.code_words, ref_stats.code_words) << "jobs=" << jobs;
    EXPECT_EQ(stats.functions_emitted, ref_stats.functions_emitted);
  }
}

// ---- Stage ordering and per-stage stats ----

TEST(PipelineStages, StandardScheduleOrderAndStats) {
  CompilerInvocation inv(kRichSource, BuildConfig::For(BuildPreset::kOurMpx));
  ASSERT_TRUE(RunStandardPipeline(&inv)) << inv.diags().ToString();

  const PipelineStats& stats = inv.stats();
  const StageId want[] = {StageId::kParse,   StageId::kSema, StageId::kIrGen,
                          StageId::kOpt,     StageId::kCodegen, StageId::kLoad};
  ASSERT_EQ(stats.stages.size(), 6u);
  for (size_t i = 0; i < stats.stages.size(); ++i) {
    EXPECT_EQ(stats.stages[i].id, want[i]) << "stage " << i;
    EXPECT_TRUE(stats.stages[i].ran);
    EXPECT_TRUE(stats.stages[i].ok);
    EXPECT_GE(stats.stages[i].ms, 0.0);
  }

  // IR sizes: irgen produces instructions, opt shrinks (or keeps) them, and
  // the counts thread through consistently stage to stage.
  const StageStats* irgen = stats.Find(StageId::kIrGen);
  const StageStats* opt = stats.Find(StageId::kOpt);
  ASSERT_NE(irgen, nullptr);
  ASSERT_NE(opt, nullptr);
  EXPECT_GT(irgen->ir_instrs_out, 0u);
  EXPECT_EQ(opt->ir_instrs_in, irgen->ir_instrs_out);
  EXPECT_LE(opt->ir_instrs_out, opt->ir_instrs_in);

  // Pass, solver, and codegen counters are populated.
  ASSERT_EQ(stats.passes.size(), PassesForLevel(OptLevel::kReduced).size());
  for (const PassRunStats& p : stats.passes) {
    EXPECT_GT(p.invocations, 0u) << p.name;
  }
  EXPECT_GT(stats.solver.vars, 0u);
  EXPECT_GT(stats.solver.constraints, 0u);
  EXPECT_GT(stats.codegen.code_words, 0u);
  EXPECT_GT(stats.codegen.functions_emitted, 0u);
  EXPECT_GT(stats.total_ms, 0.0);

  // The --time-passes rendering mentions every stage.
  const std::string table = stats.ToTable();
  for (const StageId id : want) {
    EXPECT_NE(table.find(StageName(id)), std::string::npos) << StageName(id);
  }

  // Artifacts are retained on the invocation for inspection.
  EXPECT_NE(inv.typed, nullptr);
  EXPECT_NE(inv.ir, nullptr);
  EXPECT_NE(inv.prog, nullptr);
}

TEST(PipelineStages, VerifyStageRunsWhenRequested) {
  CompilerInvocation inv(kRichSource, BuildConfig::For(BuildPreset::kOurMpx));
  ASSERT_TRUE(RunStandardPipeline(&inv, /*verify=*/true)) << inv.diags().ToString();
  ASSERT_EQ(inv.stats().stages.size(), 7u);
  EXPECT_EQ(inv.stats().stages.back().id, StageId::kVerify);
  ASSERT_NE(inv.verify_result, nullptr);
  EXPECT_TRUE(inv.verify_result->ok) << inv.verify_result->ErrorText();
  EXPECT_GT(inv.verify_result->procedures, 0u);
}

TEST(PipelineStages, FailingStageAbortsPipeline) {
  // Qualifier error: private flows to a public sink — sema must fail and
  // nothing downstream may run.
  const char* bad = R"(
    int send(int fd, char *buf, int n);
    int main() {
      private char secret[8];
      send(1, secret, 8);
      return 0;
    })";
  CompilerInvocation inv(bad, BuildConfig::For(BuildPreset::kOurMpx));
  EXPECT_FALSE(RunStandardPipeline(&inv));
  EXPECT_TRUE(inv.diags().Contains("private data flows to public"))
      << inv.diags().ToString();
  ASSERT_EQ(inv.stats().stages.size(), 2u);  // parse ok, sema failed
  EXPECT_TRUE(inv.stats().stages[0].ok);
  EXPECT_FALSE(inv.stats().stages[1].ok);
  EXPECT_EQ(inv.ir, nullptr);
  EXPECT_EQ(inv.prog, nullptr);
  EXPECT_EQ(inv.TakeProgram(), nullptr);
}

// ---- OptLevel → registered pass selection ----

TEST(PassRegistry, SelectionByLevel) {
  EXPECT_TRUE(PassesForLevel(OptLevel::kNone).empty());
  const auto reduced = PassesForLevel(OptLevel::kReduced);
  const auto full = PassesForLevel(OptLevel::kFull);
  ASSERT_EQ(reduced.size(), 4u);
  EXPECT_STREQ(reduced[0].name, "constant-fold");
  EXPECT_STREQ(reduced[1].name, "copy-propagate");
  EXPECT_STREQ(reduced[2].name, "dce");
  EXPECT_STREQ(reduced[3].name, "simplify-cfg");
  // Every reduced pass also runs at kFull, in the same schedule positions.
  ASSERT_GE(full.size(), reduced.size());
  for (size_t i = 0; i < reduced.size(); ++i) {
    EXPECT_STREQ(full[i].name, reduced[i].name);
  }
  EXPECT_STREQ(full.back().name, "jump-table");

  // ct selection: linearize-secrets joins the schedule before simplify-cfg
  // (the pass leaves kJmp-only diamonds for cleanup) and only under ct.
  PassPipelineOptions ct;
  ct.level = OptLevel::kReduced;
  ct.ct = true;
  const auto ct_passes = PassesForLevel(ct);
  ASSERT_EQ(ct_passes.size(), reduced.size() + 1);
  EXPECT_STREQ(ct_passes[3].name, "linearize-secrets");
  EXPECT_STREQ(ct_passes[4].name, "simplify-cfg");

  // The registry is the superset of every selection, in schedule order.
  EXPECT_EQ(AllFunctionPasses().size(), full.size() + 1);
}

TEST(PassRegistry, OptLevelNoneLeavesIrUntouched) {
  BuildConfig config = BuildConfig::For(BuildPreset::kOurMpx);
  config.opt_level = OptLevel::kNone;
  CompilerInvocation inv(kRichSource, config);
  ASSERT_TRUE(RunStandardPipeline(&inv)) << inv.diags().ToString();
  EXPECT_TRUE(inv.stats().passes.empty());
  const StageStats* opt = inv.stats().Find(StageId::kOpt);
  ASSERT_NE(opt, nullptr);
  EXPECT_EQ(opt->ir_instrs_in, opt->ir_instrs_out);
}

// ---- CompileBatch determinism ----

TEST(CompileBatch, ParallelSweepIdenticalToSequential) {
  const auto jobs = PresetSweepJobs(kRichSource);
  ASSERT_EQ(jobs.size(), 8u);
  auto sequential = CompileBatch(jobs, /*num_workers=*/1);
  auto parallel = CompileBatch(jobs, /*num_workers=*/4);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE(jobs[i].label);
    ASSERT_TRUE(sequential[i].ok)
        << sequential[i].invocation->diags().ToString();
    ASSERT_TRUE(parallel[i].ok) << parallel[i].invocation->diags().ToString();
    EXPECT_EQ(parallel[i].label, sequential[i].label);
    // Bit-identical code images regardless of worker count / interleaving.
    EXPECT_EQ(parallel[i].program->prog->binary.code,
              sequential[i].program->prog->binary.code);
    // Identical runtime behaviour.
    uint64_t ret_s = 0;
    uint64_t ret_p = 0;
    const AllocPolicy policy = jobs[i].config.alloc_policy;
    EXPECT_EQ(RunMainCycles(parallel[i].program->prog.get(), policy, &ret_p),
              RunMainCycles(sequential[i].program->prog.get(), policy, &ret_s));
    EXPECT_EQ(ret_p, ret_s);
  }
}

TEST(CompileBatch, PerInvocationDiagnostics) {
  // One good job, one with a qualifier error, one with a parse error: each
  // outcome carries its own diagnostics and the failures don't poison the
  // successes.
  std::vector<BatchJob> jobs(3);
  jobs[0].label = "good";
  jobs[0].source = "int main() { return 7; }";
  jobs[0].config = BuildConfig::For(BuildPreset::kOurMpx);
  jobs[1].label = "leak";
  jobs[1].source = R"(
    int send(int fd, char *buf, int n);
    int main() { private char s[4]; send(1, s, 4); return 0; })";
  jobs[1].config = BuildConfig::For(BuildPreset::kOurMpx);
  jobs[2].label = "syntax";
  jobs[2].source = "int main( { return }";
  jobs[2].config = BuildConfig::For(BuildPreset::kBase);

  auto outcomes = CompileBatch(jobs, 3);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].ok) << outcomes[0].invocation->diags().ToString();
  EXPECT_FALSE(outcomes[0].invocation->diags().HasErrors());
  EXPECT_FALSE(outcomes[1].ok);
  EXPECT_TRUE(
      outcomes[1].invocation->diags().Contains("private data flows to public"));
  EXPECT_FALSE(outcomes[2].ok);
  EXPECT_TRUE(outcomes[2].invocation->diags().HasErrors());
  EXPECT_EQ(outcomes[2].program, nullptr);
}

TEST(CompileBatch, WorkloadSweepCompilesEverywhere) {
  // The §7.2 web server compiles under all eight presets concurrently.
  auto outcomes = CompileBatch(PresetSweepJobs(workloads::kNginx), 4);
  for (const auto& out : outcomes) {
    EXPECT_TRUE(out.ok) << out.label << ":\n"
                        << out.invocation->diags().ToString();
  }
}

// ---- Worklist qualifier solver ----

TEST(QualSolverWorklist, ChainPropagationIsLinear) {
  // private ⊑ v0 ⊑ v1 ⊑ ... ⊑ v999: the worklist visits each variable once.
  QualSolver solver;
  const uint32_t n = 1000;
  std::vector<QualTerm> v;
  for (uint32_t i = 0; i < n; ++i) {
    v.push_back(solver.NewVar());
  }
  solver.AddFlow(QualTerm::Const(Qual::kPrivate), v[0], {}, "seed");
  for (uint32_t i = 0; i + 1 < n; ++i) {
    solver.AddFlow(v[i], v[i + 1], {}, "link");
  }
  DiagEngine diags;
  ASSERT_TRUE(solver.Solve(&diags));
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(solver.Resolve(v[i]), Qual::kPrivate) << i;
  }
  const QualSolverStats& s = solver.stats();
  EXPECT_EQ(s.propagations, n);       // each var flips exactly once
  EXPECT_EQ(s.worklist_pops, n);      // and is popped exactly once
  EXPECT_EQ(s.edges, n - 1);
}

TEST(QualSolverWorklist, UnreachedVarsStayPublicAndConflictsDiagnose) {
  QualSolver solver;
  QualTerm a = solver.NewVar();
  QualTerm b = solver.NewVar();
  QualTerm c = solver.NewVar();  // no private inflow: stays public
  solver.AddFlow(QualTerm::Const(Qual::kPrivate), a, {}, "seed");
  solver.AddFlow(a, b, {}, "a->b");
  solver.AddFlow(b, QualTerm::Const(Qual::kPublic), {}, "sink argument");
  DiagEngine diags;
  EXPECT_FALSE(solver.Solve(&diags));
  EXPECT_TRUE(diags.Contains("private data flows to public sink argument"))
      << diags.ToString();
  EXPECT_EQ(solver.Resolve(a), Qual::kPrivate);
  EXPECT_EQ(solver.Resolve(b), Qual::kPrivate);
  EXPECT_EQ(solver.Resolve(c), Qual::kPublic);
}

// ---- Compile() wrapper surfaces stats ----

TEST(CompileApi, StatsOutParam) {
  DiagEngine diags;
  PipelineStats stats;
  auto compiled =
      Compile(kRichSource, BuildConfig::For(BuildPreset::kOurSeg), &diags, &stats);
  ASSERT_NE(compiled, nullptr) << diags.ToString();
  EXPECT_EQ(stats.stages.size(), 6u);
  EXPECT_GT(stats.codegen.code_words, 0u);
  // The CompiledProgram's stats mirror the invocation's.
  EXPECT_EQ(compiled->codegen_stats.code_words, stats.codegen.code_words);
  EXPECT_EQ(compiled->qual_constraints, stats.solver.constraints);
}

}  // namespace
}  // namespace confllvm
