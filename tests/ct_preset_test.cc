// Constant-time preset gate (ct-mpx / ct-seg), in three movements:
//
//   1. Secret-swap differential testing: every ct workload — the four
//      hand-written kernels plus a seeded stream of generated programs over
//      branchy/memory shapes — runs under both ct presets, on all three
//      execution engines, with several distinct secret inputs. The cycle
//      count, instruction count, memory-op counters, and the cache model's
//      per-access hit/miss STREAM must be bit-identical across secrets
//      (results may differ — they are functions of the secret; timing may
//      not). A leaky control compiled under a non-ct preset shows the same
//      harness detects the timing channel the ct pipeline closes.
//   2. Every ct binary is independently re-checked by ConfVerify
//      (verify-don't-trust: the compiler is not in the TCB).
//   3. A forgery ladder: hand-patched binaries that smuggle a
//      secret-dependent branch, a secret-addressed load, a secret-addressed
//      store, and a secret divisor past the compiler are each rejected by
//      ConfVerify from first principles.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bench/workloads.h"
#include "src/driver/artifact_cache.h"
#include "src/driver/confcc.h"
#include "src/support/rng.h"
#include "src/verifier/verifier.h"
#include "tests/test_util.h"

namespace confllvm {
namespace {

using testutil::EngineOpts;
using testutil::Redecode;
using workloads::kCtKernels;
using workloads::kNumCtKernels;

// Distinct secrets spanning the interesting shapes: zero, small, mid-sized,
// and large enough to win/lose every generated comparison.
const uint64_t kSecrets[] = {0, 1, 42, 1000000007};
constexpr uint64_t kPublicArg = 7;

constexpr VmEngine kEngines[] = {VmEngine::kRef, VmEngine::kFast,
                                 VmEngine::kTrace};

// Everything about one run that a secret must not be able to influence —
// plus the return value, which only cross-ENGINE comparisons may use.
struct Observation {
  bool ok = false;
  uint64_t ret = 0;
  uint64_t cycles = 0;
  uint64_t instrs = 0;
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  std::vector<uint8_t> stream;  // per-access cache hit(1)/miss(0) sequence
};

Observation RunObserved(const std::string& src, BuildPreset preset,
                        VmEngine engine, uint64_t secret,
                        ArtifactCache* cache) {
  Observation o;
  DiagEngine d;
  auto s = MakeSessionFor(
      Compile(src, BuildConfig::For(preset), &d, nullptr, cache),
      EngineOpts(engine));
  EXPECT_NE(s, nullptr) << d.ToString();
  if (s == nullptr) {
    return o;
  }
  s->vm->cache().set_stream_log(&o.stream);
  const auto r = s->vm->Call("kernel", {secret, kPublicArg});
  s->vm->cache().set_stream_log(nullptr);
  EXPECT_TRUE(r.ok) << r.fault_msg;
  o.ok = r.ok;
  o.ret = r.ret;
  o.cycles = r.cycles;
  o.instrs = r.instrs;
  const VmStats& st = s->vm->stats();
  o.loads = st.loads;
  o.stores = st.stores;
  o.cache_hits = s->vm->cache().hits();
  o.cache_misses = s->vm->cache().misses();
  return o;
}

// Readable stream diff: vector operator== via EXPECT_EQ would dump hundreds
// of elements; report length and the first diverging access instead.
void ExpectSameStream(const std::vector<uint8_t>& a,
                      const std::vector<uint8_t>& b) {
  EXPECT_EQ(a.size(), b.size()) << "cache access counts differ";
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] != b[i]) {
      ADD_FAILURE() << "cache hit/miss streams diverge at access " << i
                    << ": " << int(a[i]) << " vs " << int(b[i]);
      return;
    }
  }
}

// The ct guarantee: across secrets, identical timing and cache behaviour.
void ExpectSecretIndependent(const Observation& base, const Observation& o) {
  EXPECT_EQ(o.cycles, base.cycles);
  EXPECT_EQ(o.instrs, base.instrs);
  EXPECT_EQ(o.loads, base.loads);
  EXPECT_EQ(o.stores, base.stores);
  EXPECT_EQ(o.cache_hits, base.cache_hits);
  EXPECT_EQ(o.cache_misses, base.cache_misses);
  ExpectSameStream(o.stream, base.stream);
}

// Cross-engine agreement for one fixed secret: everything must match,
// including the result and the cache stream.
void ExpectSameObservation(const Observation& ref, const Observation& o) {
  EXPECT_EQ(o.ok, ref.ok);
  EXPECT_EQ(o.ret, ref.ret);
  ExpectSecretIndependent(ref, o);
}

// Runs `src` through the full ct gate under one preset: ConfVerify accepts
// the binary, and the (engine × secret) observation grid is constant along
// the secret axis and consistent along the engine axis.
void RunCtGate(const std::string& src, BuildPreset preset) {
  ArtifactCache cache;  // one pipeline compile per preset, shared by all runs

  DiagEngine d;
  auto vs = MakeSessionFor(
      Compile(src, BuildConfig::For(preset), &d, nullptr, &cache),
      EngineOpts(VmEngine::kRef));
  ASSERT_NE(vs, nullptr) << d.ToString();
  testutil::ExpectVerifies(*vs, PresetName(preset));

  constexpr int kNumSecrets = sizeof(kSecrets) / sizeof(kSecrets[0]);
  Observation grid[3][kNumSecrets];
  for (int e = 0; e < 3; ++e) {
    for (int i = 0; i < kNumSecrets; ++i) {
      SCOPED_TRACE(std::string(EngineName(kEngines[e])) + " secret=" +
                   std::to_string(kSecrets[i]));
      grid[e][i] = RunObserved(src, preset, kEngines[e], kSecrets[i], &cache);
      ASSERT_TRUE(grid[e][i].ok);
    }
  }
  for (int e = 0; e < 3; ++e) {
    for (int i = 1; i < kNumSecrets; ++i) {
      SCOPED_TRACE(std::string("secret-swap ") + EngineName(kEngines[e]) +
                   " secret=" + std::to_string(kSecrets[i]));
      ExpectSecretIndependent(grid[e][0], grid[e][i]);
    }
  }
  for (int e = 1; e < 3; ++e) {
    for (int i = 0; i < kNumSecrets; ++i) {
      SCOPED_TRACE(std::string("engine-diff ") + EngineName(kEngines[e]) +
                   " secret=" + std::to_string(kSecrets[i]));
      ExpectSameObservation(grid[0][i], grid[e][i]);
    }
  }
}

// ---- movement 1a: the hand-written ct workloads ----

class CtWorkloads : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(All, CtWorkloads,
                         ::testing::Range(0, kNumCtKernels),
                         [](const auto& info) {
                           return kCtKernels[info.param].name;
                         });

TEST_P(CtWorkloads, TraceEqualAcrossSecretsOnAllEngines) {
  const auto& kernel = kCtKernels[GetParam()];
  for (BuildPreset preset : kCtBuildPresets) {
    SCOPED_TRACE(PresetName(preset));
    RunCtGate(kernel.source, preset);
  }
}

// ---- movement 1b: seeded random programs over the ct-typeable subset ----
//
// The generator composes kernels from secret branches (optionally nested,
// with and without else-arms), secret-conditional private-table stores at
// public indexes, public loops with secret-conditional bodies, and
// public-divisor division — exactly the shapes the linearizer must make
// oblivious. Deterministic seed: failures reproduce bit-for-bit.

std::string ArmStmt(Rng* rng) {
  static const char* kOps[] = {"+", "-", "*", "^", "&", "|"};
  const std::string op = kOps[rng->Below(6)];
  const std::string idx = std::to_string(rng->Below(8));
  switch (rng->Below(4)) {
    case 0:
      return "a = a " + op + " b; ";
    case 1:
      return "b = b " + op + " " + std::to_string(rng->Range(1, 9)) + "; ";
    case 2:
      return "m[" + idx + "] = a " + op + " b; ";
    default:
      return "a = m[" + idx + "] " + op + " a; ";
  }
}

std::string SecretCond(Rng* rng, const std::string& rhs_pool) {
  static const char* kCmps[] = {"<", ">", "<=", ">=", "==", "!="};
  static const char* kLhs[] = {"a", "b", "s"};
  const std::string lhs = kLhs[rng->Below(3)];
  const std::string cmp = kCmps[rng->Below(6)];
  const std::string rhs =
      rng->Chance(0.5) ? rhs_pool : std::to_string(rng->Range(-4, 20));
  return lhs + " " + cmp + " " + rhs;
}

std::string SecretIf(Rng* rng, int depth) {
  std::string s = "if (" + SecretCond(rng, rng->Chance(0.5) ? "b" : "s") +
                  ") { ";
  const int n = 1 + static_cast<int>(rng->Below(3));
  for (int i = 0; i < n; ++i) {
    s += ArmStmt(rng);
  }
  if (depth > 0 && rng->Chance(0.4)) {
    s += SecretIf(rng, depth - 1);
  }
  s += "} ";
  if (rng->Chance(0.6)) {
    s += "else { ";
    const int ne = 1 + static_cast<int>(rng->Below(2));
    for (int i = 0; i < ne; ++i) {
      s += ArmStmt(rng);
    }
    s += "} ";
  }
  return s;
}

std::string PublicLoop(Rng* rng) {
  const int bound = 4 << rng->Below(3);  // 4, 8, 16
  std::string s = "for (int i = 0; i < " + std::to_string(bound) +
                  "; i = i + 1) { ";
  s += "if (" + SecretCond(rng, "i") + ") { ";
  s += "a = m[i & 7] " + std::string(rng->Chance(0.5) ? "+" : "^") + " a; ";
  if (rng->Chance(0.5)) {
    s += "m[i & 7] = b + i; ";
  }
  s += "} else { b = b ^ i; } } ";
  return s;
}

std::string GenKernel(Rng* rng) {
  std::string src =
      "private int kernel(private int s, int p) {\n"
      "  private int a = s ^ " + std::to_string(rng->Range(1, 99)) + ";\n"
      "  private int b = s + p + " + std::to_string(rng->Range(1, 99)) + ";\n"
      "  private int m[8];\n"
      "  for (int i = 0; i < 8; i = i + 1) { m[i] = s + i * " +
      std::to_string(rng->Range(1, 9)) + "; }\n";
  const int stmts = 3 + static_cast<int>(rng->Below(4));
  for (int i = 0; i < stmts; ++i) {
    src += "  ";
    switch (rng->Below(5)) {
      case 0:
      case 1:
        src += SecretIf(rng, /*depth=*/1);
        break;
      case 2:
        src += PublicLoop(rng);
        break;
      case 3:
        src += ArmStmt(rng);
        break;
      default: {
        static const int kDivisors[] = {3, 5, 7, 9};
        src += "a = a / " + std::to_string(kDivisors[rng->Below(4)]) + "; ";
        break;
      }
    }
    src += "\n";
  }
  src +=
      "  private int acc = a ^ b;\n"
      "  for (int i = 0; i < 8; i = i + 1) { acc = acc + m[i]; }\n"
      "  return acc;\n"
      "}\n";
  return src;
}

TEST(CtSecretSwapFuzz, GeneratedKernelsTraceEqualAcrossSecrets) {
  Rng rng(0xc0117e57);
  constexpr int kNumPrograms = 10;
  for (int i = 0; i < kNumPrograms; ++i) {
    const std::string src = GenKernel(&rng);
    SCOPED_TRACE("program " + std::to_string(i) + ":\n" + src);
    for (BuildPreset preset : kCtBuildPresets) {
      SCOPED_TRACE(PresetName(preset));
      RunCtGate(src, preset);
    }
  }
}

// ---- movement 1c: the harness has teeth ----
//
// The same branchy shape compiled WITHOUT the ct pipeline takes genuinely
// different paths per input: the cycle count must differ between an input
// that never takes the expensive arm and one that always does. (The input
// is public here — every instrumented preset rejects branching on private
// data outright; ct is the only preset family that accepts AND closes the
// channel.) If this test ever fails, the differential gate above has lost
// its power to detect anything.
TEST(CtSecretSwap, NonCtPresetLeaksTimingOnTheSameShape) {
  const char* leaky = R"(
    int kernel(int s, int p) {
      int acc = p;
      for (int i = 0; i < 64; i = i + 1) {
        if (s > i) { acc = acc + i * 3 + (acc ^ i); }
        else { acc = acc ^ i; }
      }
      return acc;
    })";
  ArtifactCache cache;
  const Observation lo = RunObserved(leaky, BuildPreset::kOurMpx,
                                     VmEngine::kRef, 0, &cache);
  const Observation hi = RunObserved(leaky, BuildPreset::kOurMpx,
                                     VmEngine::kRef, 64, &cache);
  ASSERT_TRUE(lo.ok);
  ASSERT_TRUE(hi.ok);
  EXPECT_NE(lo.cycles, hi.cycles)
      << "the non-ct build was expected to leak timing here";
}

// The ct sema rejects what the linearizer cannot make oblivious.
TEST(CtSema, RejectsSecretIndexLoopBoundAndDivisor) {
  struct Case {
    const char* name;
    const char* src;
    const char* want;
  };
  const Case cases[] = {
      {"secret array index",
       "private int kernel(private int s, int p) {"
       "  private int m[8];"
       "  for (int i = 0; i < 8; i = i + 1) { m[i] = i; }"
       "  return m[s & 7]; }",
       "array index must be public"},
      {"secret loop bound",
       "private int kernel(private int s, int p) {"
       "  private int acc = 0;"
       "  for (int i = 0; i < s; i = i + 1) { acc = acc + i; }"
       "  return acc; }",
       "loop condition must be public"},
      {"secret divisor",
       "private int kernel(private int s, int p) {"
       "  return p / (s | 1); }",
       "divisor must be public"},
      {"call under a secret branch",
       "private int helper(private int x) { return x + 1; }"
       "private int kernel(private int s, int p) {"
       "  private int a = p;"
       "  if (s > 0) { a = helper(a); }"
       "  return a; }",
       "under a secret branch cannot be made constant-time"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    for (BuildPreset preset : kCtBuildPresets) {
      DiagEngine d;
      auto s = MakeSession(c.src, preset, &d);
      EXPECT_EQ(s, nullptr) << PresetName(preset)
                            << " accepted a non-ct-typeable program";
      EXPECT_NE(d.ToString().find(c.want), std::string::npos) << d.ToString();
    }
  }
}

// ---- movements 2+3: the forgery ladder ----
//
// Each forgery patches a compiler-produced, verifier-clean ct binary so it
// smuggles exactly one secret-dependent effect past the compiler, then
// demands ConfVerify reject it from the binary alone. The patch site is the
// linearizer's own select: its condition register provably carries secret
// taint at that program point under the verifier's dataflow, so rewriting
// the select into a branch/load/store/div on that register forges the
// precise violation each ct rule exists to stop.

const char* kForgeBase = R"(
    private int kernel(private int s, int p) {
      private int a = s ^ 5;
      if (a > p) { a = a + p; } else { a = a - p; }
      int d = p / 3;
      private int buf[4];
      for (int i = 0; i < 4; i = i + 1) { buf[i] = a + i; }
      return a + buf[d & 3] + d;
    })";

std::unique_ptr<Session> BuildCleanCt(const char* src) {
  DiagEngine d;
  auto s = MakeSession(src, BuildPreset::kCtMpx, &d);
  EXPECT_NE(s, nullptr) << d.ToString();
  if (s != nullptr) {
    const VerifyResult r = Verify(*s->compiled->prog);
    EXPECT_TRUE(r.ok) << r.ErrorText();
  }
  return s;
}

// Replaces every kSelect with `forge(select, word)` (re-encoded in place;
// all the forged ops are one-word, like kSelect) and re-decodes. Returns
// the count.
template <typename Fn>
int PatchSelects(Session* s, Fn forge) {
  Binary& bin = s->compiled->prog->binary;
  int patched = 0;
  for (size_t w = 0; w < bin.code.size(); ++w) {
    uint32_t consumed = 1;
    auto mi = Decode(bin.code, w, &consumed);
    if (mi.has_value() && mi->op == Op::kSelect) {
      std::vector<uint64_t> words;
      Encode(forge(*mi, static_cast<uint32_t>(w)), &words);
      EXPECT_EQ(words.size(), 1u);
      bin.code[w] = words[0];
      ++patched;
    }
    if (mi.has_value()) {
      w += consumed - 1;
    }
  }
  Redecode(s->compiled->prog.get());
  return patched;
}

void ExpectForgeryRejected(Session* s, const char* want) {
  const VerifyResult r = Verify(*s->compiled->prog);
  EXPECT_FALSE(r.ok) << "forged binary must not verify";
  EXPECT_NE(r.ErrorText().find(want), std::string::npos) << r.ErrorText();
}

TEST(CtForgery, SmuggledSecretBranchRejected) {
  auto s = BuildCleanCt(kForgeBase);
  ASSERT_NE(s, nullptr);
  const int n = PatchSelects(s.get(), [](const MInstr& sel, uint32_t w) {
    MInstr j{};
    j.op = Op::kJnz;
    j.rd = sel.rs1;                   // branch on the (secret) select mask
    j.imm = static_cast<int32_t>(w);  // self-target: valid, in-procedure
    return j;
  });
  ASSERT_GT(n, 0);
  ExpectForgeryRejected(s.get(), "branch on a private value");
}

TEST(CtForgery, SecretAddressedLoadRejected) {
  auto s = BuildCleanCt(kForgeBase);
  ASSERT_NE(s, nullptr);
  const int n = PatchSelects(s.get(), [](const MInstr& sel, uint32_t) {
    MInstr ld{};
    ld.op = Op::kLoad;
    ld.rd = sel.rd;
    ld.mem.base = sel.rs1;  // address = the secret mask
    return ld;
  });
  ASSERT_GT(n, 0);
  ExpectForgeryRejected(s.get(), "ct: memory address depends on a private value");
}

TEST(CtForgery, SecretAddressedStoreRejected) {
  auto s = BuildCleanCt(kForgeBase);
  ASSERT_NE(s, nullptr);
  const int n = PatchSelects(s.get(), [](const MInstr& sel, uint32_t) {
    MInstr st{};
    st.op = Op::kStore;
    st.rd = sel.rd;         // store source
    st.mem.base = sel.rs1;  // address = the secret mask
    return st;
  });
  ASSERT_GT(n, 0);
  ExpectForgeryRejected(s.get(), "ct: memory address depends on a private value");
}

TEST(CtForgery, SecretDivisorRejected) {
  auto s = BuildCleanCt(kForgeBase);
  ASSERT_NE(s, nullptr);
  const int n = PatchSelects(s.get(), [](const MInstr& sel, uint32_t) {
    MInstr dv{};
    dv.op = Op::kDiv;
    dv.rd = sel.rd;
    dv.rs1 = sel.rd;
    dv.rs2 = sel.rs1;  // divisor = the secret mask
    return dv;
  });
  ASSERT_GT(n, 0);
  ExpectForgeryRejected(s.get(), "ct: division by a private divisor");
}

// The forged binaries above still carry the ct flag the compiler stamped.
// Linker-level agreement: a ct object must refuse to link against a non-ct
// object, so a victim cannot be handed a half-hardened program.
TEST(CtForgery, CtFlagSurvivesSerializationRoundTrip) {
  auto s = BuildCleanCt(kForgeBase);
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->compiled->prog->binary.ct);
  const std::vector<uint8_t> bytes = SerializeBinary(s->compiled->prog->binary);
  Binary back;
  ASSERT_TRUE(DeserializeBinary(bytes, &back));
  EXPECT_TRUE(back.ct);
}

}  // namespace
}  // namespace confllvm
