// Appendix-A formal model tests: Figure-10 type rules, and the Theorem-1
// noninterference property validated on hundreds of random well-typed
// programs (two-run, lock-step low-equivalence preservation).
#include <gtest/gtest.h>

#include "src/formal/model.h"

namespace confllvm::formal {
namespace {

Program TinyProgram(std::vector<Cmd> cmds) {
  Program p;
  for (const Cmd& c : cmds) {
    Node n;
    n.cmd = c;
    p.nodes.push_back(n);
  }
  return p;
}

TEST(FormalTypeRules, StrPrivateToPublicRejected) {
  // r2 is H at entry; str µ_L[0] := r2 violates ℓr ⊑ ℓe.
  Program p;
  Node n;
  n.cmd.kind = Cmd::Kind::kStr;
  n.cmd.reg = 2;
  n.cmd.region = Lab::kL;
  Exp a;
  a.kind = Exp::Kind::kConst;
  a.n = 0;
  n.cmd.exp = p.AddExp(a);
  n.gamma_in[2] = Lab::kH;
  n.gamma_out[2] = Lab::kH;
  p.nodes.push_back(n);
  Node halt;
  halt.cmd.kind = Cmd::Kind::kHalt;
  for (int r = 0; r < kNumRegs; ++r) {
    halt.gamma_in[r] = Lab::kH;
    halt.gamma_out[r] = Lab::kH;
  }
  p.nodes.push_back(halt);
  std::string err;
  EXPECT_FALSE(TypeCheck(p, &err));
  EXPECT_NE(err.find("str"), std::string::npos) << err;
}

TEST(FormalTypeRules, BranchOnPrivateRejected) {
  Program p;
  Node n;
  n.cmd.kind = Cmd::Kind::kIf;
  Exp e;
  e.kind = Exp::Kind::kReg;
  e.reg = 3;
  n.cmd.exp = p.AddExp(e);
  n.cmd.target = 1;
  n.cmd.f_target = 1;
  n.gamma_in[3] = Lab::kH;
  n.gamma_out[3] = Lab::kH;
  p.nodes.push_back(n);
  Node halt;
  halt.cmd.kind = Cmd::Kind::kHalt;
  for (int r = 0; r < kNumRegs; ++r) {
    halt.gamma_in[r] = Lab::kH;
    halt.gamma_out[r] = Lab::kH;
  }
  p.nodes.push_back(halt);
  std::string err;
  EXPECT_FALSE(TypeCheck(p, &err));
  EXPECT_NE(err.find("condition"), std::string::npos) << err;
}

TEST(FormalTypeRules, EdgeConsistencyRejected) {
  // Node 0 makes r0 private but node 1 claims it public.
  Program p;
  Node n0;
  n0.cmd.kind = Cmd::Kind::kLdr;
  n0.cmd.reg = 0;
  n0.cmd.region = Lab::kH;
  Exp a;
  a.kind = Exp::Kind::kConst;
  n0.cmd.exp = p.AddExp(a);
  n0.gamma_out[0] = Lab::kH;
  p.nodes.push_back(n0);
  Node n1;
  n1.cmd.kind = Cmd::Kind::kHalt;
  n1.gamma_in[0] = Lab::kL;  // inconsistent with the edge from n0
  p.nodes.push_back(n1);
  std::string err;
  EXPECT_FALSE(TypeCheck(p, &err));
  EXPECT_NE(err.find("edge"), std::string::npos) << err;
}

TEST(FormalSemantics, DeterministicStep) {
  Program p;
  Node n;
  n.cmd.kind = Cmd::Kind::kMov;
  n.cmd.reg = 0;
  Exp e;
  e.kind = Exp::Kind::kConst;
  e.n = 41;
  n.cmd.exp = p.AddExp(e);
  p.nodes.push_back(n);
  Node halt;
  halt.cmd.kind = Cmd::Kind::kHalt;
  p.nodes.push_back(halt);
  Config c;
  Step(p, &c);
  EXPECT_EQ(c.regs[0], 41);
  EXPECT_EQ(c.pc, 1);
  Step(p, &c);
  EXPECT_TRUE(c.halted);
}

TEST(FormalSemantics, ControlEscapeIsStuckState) {
  Program p = TinyProgram({Cmd{Cmd::Kind::kGoto, 0, -1, Lab::kL, 99, 0}});
  Config c;
  Step(p, &c);
  Step(p, &c);
  EXPECT_TRUE(c.stuck);
}

// Theorem 1 as a property test: hundreds of random well-typed programs,
// random low-equivalent pairs, lock-step execution never diverges on public
// state.
class Noninterference : public ::testing::TestWithParam<int> {};
INSTANTIATE_TEST_SUITE_P(Seeds, Noninterference, ::testing::Range(0, 200));

TEST_P(Noninterference, HoldsForWellTypedPrograms) {
  GeneratedCase gc = GenerateWellTypedCase(static_cast<uint64_t>(GetParam()) * 7919 + 1);
  std::string err;
  if (!TypeCheck(gc.program, &err)) {
    GTEST_SKIP() << "generator produced an ill-typed program: " << err;
  }
  ASSERT_TRUE(LowEquivalent(gc.program, gc.c0, gc.c1));
  EXPECT_TRUE(CheckNoninterference(gc.program, gc.c0, gc.c1, 500, &err)) << err;
}

TEST(NoninterferenceNegative, LeakyProgramViolatesTheProperty) {
  // mov r0 := r2 (H); str µ_L[0] := r0 — ill-typed, and the two-run check
  // catches the actual divergence on public memory.
  Program p;
  Node n0;
  n0.cmd.kind = Cmd::Kind::kMov;
  n0.cmd.reg = 0;
  Exp e;
  e.kind = Exp::Kind::kReg;
  e.reg = 2;
  n0.cmd.exp = p.AddExp(e);
  n0.gamma_in[2] = Lab::kH;
  n0.gamma_out[0] = Lab::kH;
  n0.gamma_out[2] = Lab::kH;
  p.nodes.push_back(n0);
  Node n1;
  n1.cmd.kind = Cmd::Kind::kStr;
  n1.cmd.reg = 0;
  n1.cmd.region = Lab::kL;
  Exp a;
  a.kind = Exp::Kind::kConst;
  n1.cmd.exp = p.AddExp(a);
  for (int r = 0; r < kNumRegs; ++r) {
    n1.gamma_in[r] = r == 0 || r == 2 ? Lab::kH : Lab::kL;
    n1.gamma_out[r] = n1.gamma_in[r];
  }
  p.nodes.push_back(n1);
  Node halt;
  halt.cmd.kind = Cmd::Kind::kHalt;
  for (int r = 0; r < kNumRegs; ++r) {
    halt.gamma_in[r] = Lab::kH;
    halt.gamma_out[r] = Lab::kH;
  }
  p.nodes.push_back(halt);

  std::string err;
  EXPECT_FALSE(TypeCheck(p, &err)) << "the leak must be ill-typed";

  Config a0;
  Config b0;
  a0.regs[2] = 1;
  b0.regs[2] = 2;  // secrets differ; everything public equal
  EXPECT_FALSE(CheckNoninterference(p, a0, b0, 100, &err));
}

}  // namespace
}  // namespace confllvm::formal
