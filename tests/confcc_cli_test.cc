// End-to-end regression tests for the confcc driver's failure behaviour,
// run against the real binary (CONFCC_PATH, injected by CMake): every
// operational failure — missing input, unreadable cache dir, malformed
// injection spec — exits nonzero with a one-line diagnostic, injected
// chaos never changes emitted bytes, and the injector's hit-count report
// lands where --inject-report points.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr, interleaved
};

// Runs the real confcc with `args` through the shell (so env-var prefixes
// work), capturing both streams.
RunResult RunConfcc(const std::string& args, const std::string& env = "") {
  const std::string cmd =
      env + (env.empty() ? "" : " ") + CONFCC_PATH + " " + args + " 2>&1";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << cmd;
  if (pipe == nullptr) {
    return r;
  }
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) {
    r.output.append(buf, n);
  }
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

struct TempDir {
  TempDir() {
    static std::atomic<int> counter{0};
    path = (fs::temp_directory_path() /
            ("confcc_cli_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter.fetch_add(1))))
               .string();
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string File(const std::string& name) const {
    return (fs::path(path) / name).string();
  }
  std::string path;
};

void WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << text;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// filename -> bytes for every regular file in `dir`.
std::map<std::string, std::string> DirContents(const std::string& dir) {
  std::map<std::string, std::string> m;
  for (const auto& de : fs::directory_iterator(dir)) {
    if (de.is_regular_file()) {
      m[de.path().filename().string()] = ReadFile(de.path().string());
    }
  }
  return m;
}

const char* kSource =
    "int main() { int s = 0; for (int i = 1; i <= 10; i = i + 1) "
    "{ s = s + i; } return s; }\n";

int CountLines(const std::string& s) {
  int lines = 0;
  for (const char c : s) {
    lines += c == '\n' ? 1 : 0;
  }
  return lines;
}

TEST(ConfccCli, MissingInputFileExitsNonzeroWithOneLineDiagnostic) {
  TempDir dir;
  const auto r = RunConfcc(dir.File("does_not_exist.mc"));
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("confcc: cannot open"), std::string::npos)
      << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
}

TEST(ConfccCli, UnreadableInputFileExitsNonzeroWithDiagnostic) {
  if (::geteuid() == 0) {
    GTEST_SKIP() << "root ignores file permissions";
  }
  TempDir dir;
  const std::string src = dir.File("locked.mc");
  WriteFile(src, kSource);
  fs::permissions(fs::path(src), fs::perms::none);
  const auto r = RunConfcc(src);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("confcc: cannot open"), std::string::npos)
      << r.output;
}

TEST(ConfccCli, UncreatableCacheDirExitsNonzeroWithOneLineDiagnostic) {
  TempDir dir;
  const std::string src = dir.File("p.mc");
  WriteFile(src, kSource);
  // A path *through a regular file* can never be created as a directory —
  // works whether or not the test runs as root.
  const std::string blocker = dir.File("blocker");
  WriteFile(blocker, "not a directory\n");
  const auto r =
      RunConfcc("--cache-dir=" + blocker + "/cache " + src);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("confcc: cannot create cache dir"),
            std::string::npos)
      << r.output;
  EXPECT_EQ(CountLines(r.output), 1) << r.output;
}

TEST(ConfccCli, MalformedInjectSpecExitsWithUsage) {
  TempDir dir;
  const std::string src = dir.File("p.mc");
  WriteFile(src, kSource);
  for (const char* bad : {"disk.read.open=p2.0", "disk.read.open", "seed="}) {
    SCOPED_TRACE(bad);
    const auto r =
        RunConfcc(std::string("--inject-faults=") + bad + " " + src);
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("confcc: bad --inject-faults spec:"),
              std::string::npos)
        << r.output;
  }
}

TEST(ConfccCli, MalformedInjectEnvExitsWithDiagnostic) {
  TempDir dir;
  const std::string src = dir.File("p.mc");
  WriteFile(src, kSource);
  const auto r = RunConfcc(src, "CONFCC_INJECT_FAULTS=bogus");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("confcc: bad CONFCC_INJECT_FAULTS:"),
            std::string::npos)
      << r.output;
}

TEST(ConfccCli, VmDeadlineFlagReportsDeadlineFault) {
  TempDir dir;
  const std::string src = dir.File("spin.mc");
  WriteFile(src,
            "int main() { int s = 0; for (int i = 0; i < 2000000000; "
            "i = i + 1) { s = s + i; } return s; }\n");
  const auto r = RunConfcc("--deadline-ms=25 " + src);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("faulted: deadline"), std::string::npos)
      << r.output;
}

// The CLI face of the chaos gate: a faulted cold→warm --preset=all sweep
// exits 0, emits byte-identical binaries to the fault-free sweep, and
// writes an injector hit-count report.
TEST(ConfccCli, InjectedDiskChaosKeepsSweepOutputsIdenticalAndWritesReport) {
  TempDir dir;
  const std::string src = dir.File("p.mc");
  WriteFile(src, kSource);

  // Fault-free reference sweep.
  const std::string ref_dir = dir.File("ref");
  fs::create_directories(ref_dir);
  auto r = RunConfcc("--preset=all --emit-bin=" + ref_dir + "/out " + src);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  const auto ref = DirContents(ref_dir);
  ASSERT_FALSE(ref.empty());

  // Chaos sweeps, cold then warm, through one cache dir.
  const std::string cache_dir = dir.File("cache");
  const std::string report = dir.File("report.json");
  for (const char* round : {"cold", "warm"}) {
    SCOPED_TRACE(round);
    const std::string out_dir = dir.File(std::string("chaos_") + round);
    fs::create_directories(out_dir);
    r = RunConfcc("--inject-faults=seed=11,disk.*=p0.3 --inject-report=" +
                  report + " --cache-dir=" + cache_dir +
                  " --preset=all --emit-bin=" + out_dir + "/out " + src);
    ASSERT_EQ(r.exit_code, 0) << r.output;
    EXPECT_EQ(DirContents(out_dir), ref);
  }

  // The report landed and names the disk sites.
  const std::string json = ReadFile(report);
  EXPECT_NE(json.find("\"seed\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sites\""), std::string::npos) << json;
  EXPECT_NE(json.find("disk."), std::string::npos) << json;
}

// --connect hands the cache tiers to the daemon; naming a client-local
// cache location alongside it is a contradiction confcc must refuse in one
// line, before doing any work.
TEST(ConfccCli, ConnectConflictsWithLocalCacheFlags) {
  TempDir dir;
  const std::string src = dir.File("p.mc");
  WriteFile(src, kSource);

  for (const std::string flag :
       {"--cache-dir=" + dir.File("cache"), std::string("--cache-bytes=4096"),
        std::string("--incremental")}) {
    SCOPED_TRACE(flag);
    const auto r =
        RunConfcc("--connect=" + dir.File("no.sock") + " " + flag + " " + src);
    EXPECT_EQ(r.exit_code, 2) << r.output;
    EXPECT_NE(r.output.find("conflicts with --connect"), std::string::npos)
        << r.output;
    // One line, and it names the flag to drop.
    EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 1)
        << r.output;
  }
}

// No daemon at the socket: a one-line diagnostic and exit 1, not a hang or
// a silent local fallback (falling back would silently compile cold).
TEST(ConfccCli, ConnectToMissingDaemonFailsWithOneLine) {
  TempDir dir;
  const std::string src = dir.File("p.mc");
  WriteFile(src, kSource);

  const auto r = RunConfcc("--connect=" + dir.File("no.sock") + " " + src);
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_NE(r.output.find("cannot connect to daemon"), std::string::npos)
      << r.output;
  EXPECT_EQ(std::count(r.output.begin(), r.output.end(), '\n'), 1) << r.output;
}

}  // namespace
